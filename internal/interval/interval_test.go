package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(5, 3) did not panic")
		}
	}()
	New(5, 3)
}

func TestLen(t *testing.T) {
	tests := []struct {
		iv   Interval
		want int64
	}{
		{New(0, 0), 1},
		{New(0, 9), 10},
		{New(-5, 5), 11},
	}
	for _, tt := range tests {
		if got := tt.iv.Len(); got != tt.want {
			t.Errorf("%v.Len() = %d, want %d", tt.iv, got, tt.want)
		}
	}
}

func TestContains(t *testing.T) {
	iv := New(10, 20)
	for _, v := range []int64{10, 15, 20} {
		if !iv.Contains(v) {
			t.Errorf("%v.Contains(%d) = false, want true", iv, v)
		}
	}
	for _, v := range []int64{9, 21, -1} {
		if iv.Contains(v) {
			t.Errorf("%v.Contains(%d) = true, want false", iv, v)
		}
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		a, b   Interval
		want   Interval
		wantOK bool
	}{
		{New(0, 10), New(5, 15), New(5, 10), true},
		{New(0, 10), New(10, 15), New(10, 10), true},
		{New(0, 10), New(11, 15), Interval{}, false},
		{New(0, 10), New(2, 8), New(2, 8), true},
	}
	for _, tt := range tests {
		got, ok := tt.a.Intersect(tt.b)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("%v.Intersect(%v) = %v,%v want %v,%v", tt.a, tt.b, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestSplitAt(t *testing.T) {
	tests := []struct {
		name string
		iv   Interval
		cuts []int64
		want []Interval
	}{
		{"single cut", New(0, 10), []int64{4}, []Interval{New(0, 3), New(4, 10)}},
		{"two cuts", New(0, 10), []int64{4, 8}, []Interval{New(0, 3), New(4, 7), New(8, 10)}},
		{"unsorted cuts", New(0, 10), []int64{8, 4}, []Interval{New(0, 3), New(4, 7), New(8, 10)}},
		{"cut at Lo ignored", New(0, 10), []int64{0}, []Interval{New(0, 10)}},
		{"cut past Hi ignored", New(0, 10), []int64{11}, []Interval{New(0, 10)}},
		{"cut at Hi", New(0, 10), []int64{10}, []Interval{New(0, 9), New(10, 10)}},
		{"duplicate cuts", New(0, 10), []int64{5, 5}, []Interval{New(0, 4), New(5, 10)}},
		{"no cuts", New(0, 10), nil, []Interval{New(0, 10)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.iv.SplitAt(tt.cuts...)
			if len(got) != len(tt.want) {
				t.Fatalf("SplitAt(%v) = %v, want %v", tt.cuts, got, tt.want)
			}
			for k := range got {
				if got[k] != tt.want[k] {
					t.Fatalf("SplitAt(%v) = %v, want %v", tt.cuts, got, tt.want)
				}
			}
		})
	}
}

// SplitAt must always yield a horizontal partition of its receiver.
func TestSplitAtIsPartitionProperty(t *testing.T) {
	f := func(lo int16, span uint8, rawCuts []int16) bool {
		iv := New(int64(lo), int64(lo)+int64(span))
		cuts := make([]int64, len(rawCuts))
		for k, c := range rawCuts {
			cuts[k] = int64(c)
		}
		parts := Set(iv.SplitAt(cuts...))
		return parts.IsHorizontalPartition(iv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCovers(t *testing.T) {
	dom := New(0, 100)
	tests := []struct {
		name string
		set  Set
		want bool
	}{
		{"exact partition", Set{New(0, 50), New(51, 100)}, true},
		{"overlapping cover", Set{New(0, 60), New(40, 100)}, true},
		{"gap", Set{New(0, 40), New(42, 100)}, false},
		{"missing tail", Set{New(0, 99)}, false},
		{"missing head", Set{New(1, 100)}, false},
		{"single covering", Set{New(-10, 200)}, true},
		{"empty", Set{}, false},
		{"unsorted", Set{New(51, 100), New(0, 50)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.set.Covers(dom); got != tt.want {
				t.Errorf("Covers = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDisjoint(t *testing.T) {
	if !(Set{New(0, 5), New(6, 10)}).Disjoint() {
		t.Error("adjacent intervals reported as overlapping")
	}
	if (Set{New(0, 5), New(5, 10)}).Disjoint() {
		t.Error("shared endpoint not detected")
	}
	if !(Set{}).Disjoint() {
		t.Error("empty set should be disjoint")
	}
}

func TestGaps(t *testing.T) {
	tests := []struct {
		name string
		set  Set
		want Interval
		gaps []Interval
	}{
		{"full cover", Set{New(0, 100)}, New(10, 20), nil},
		{"no cover", Set{}, New(10, 20), []Interval{New(10, 20)}},
		{"middle gap", Set{New(0, 12), New(18, 100)}, New(10, 20), []Interval{New(13, 17)}},
		{"head gap", Set{New(15, 100)}, New(10, 20), []Interval{New(10, 14)}},
		{"tail gap", Set{New(0, 15)}, New(10, 20), []Interval{New(16, 20)}},
		{"two gaps", Set{New(12, 13), New(16, 17)}, New(10, 20),
			[]Interval{New(10, 11), New(14, 15), New(18, 20)}},
		{"irrelevant fragment", Set{New(30, 40)}, New(10, 20), []Interval{New(10, 20)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.set.Gaps(tt.want)
			if len(got) != len(tt.gaps) {
				t.Fatalf("Gaps = %v, want %v", got, tt.gaps)
			}
			for k := range got {
				if got[k] != tt.gaps[k] {
					t.Fatalf("Gaps = %v, want %v", got, tt.gaps)
				}
			}
		})
	}
}

// Gaps plus the covered portions must partition the queried range.
func TestGapsComplementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dom := New(0, 1000)
		var set Set
		for k := 0; k < rng.Intn(6); k++ {
			lo := rng.Int63n(1000)
			set = append(set, New(lo, lo+rng.Int63n(1000-lo+1)))
		}
		wantLo := rng.Int63n(900)
		want := New(wantLo, wantLo+rng.Int63n(100)+1)
		gaps := set.Gaps(want)
		// Every gap point must be uncovered; every non-gap point covered.
		inGap := func(v int64) bool {
			for _, g := range gaps {
				if g.Contains(v) {
					return true
				}
			}
			return false
		}
		covered := func(v int64) bool {
			for _, iv := range set {
				if iv.Contains(v) {
					return true
				}
			}
			return false
		}
		for v := want.Lo; v <= want.Hi; v++ {
			if inGap(v) == covered(v) {
				return false
			}
		}
		_ = dom
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEquiDepth(t *testing.T) {
	dom := New(0, 99)
	for _, n := range []int{1, 2, 3, 5, 7, 100} {
		set := EquiDepth(dom, n)
		if len(set) != n {
			t.Errorf("EquiDepth(%d) produced %d fragments", n, len(set))
		}
		if !set.IsHorizontalPartition(dom) {
			t.Errorf("EquiDepth(%d) = %v is not a horizontal partition", n, set)
		}
		// Sizes must differ by at most one point.
		var mn, mx int64 = 1 << 62, 0
		for _, iv := range set {
			if l := iv.Len(); l < mn {
				mn = l
			}
			if l := iv.Len(); l > mx {
				mx = l
			}
		}
		if mx-mn > 1 {
			t.Errorf("EquiDepth(%d): fragment sizes differ by %d", n, mx-mn)
		}
	}
	if got := EquiDepth(New(0, 2), 10); len(got) != 3 {
		t.Errorf("EquiDepth clamping: got %d fragments, want 3", len(got))
	}
	if got := EquiDepth(dom, 0); len(got) != 1 {
		t.Errorf("EquiDepth(0): got %d fragments, want 1", len(got))
	}
}

func TestEquiDepthPartitionProperty(t *testing.T) {
	f := func(lo int16, span uint16, n uint8) bool {
		dom := New(int64(lo), int64(lo)+int64(span))
		set := EquiDepth(dom, int(n))
		return set.IsHorizontalPartition(dom)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
