package interval

// SplitCandidates implements Definition 7 (partition candidates) for a
// single existing fragment interval frag and a query selection interval
// query. It returns the candidate intervals induced by using the query's
// end points as split points:
//
//	case 1: no overlap                       -> no candidates
//	case 2: frag contained in query          -> no candidates
//	case 3: query overlaps frag from left    -> [frag.Lo, query.Hi], (query.Hi, frag.Hi]
//	case 4: query overlaps frag from right   -> [frag.Lo, query.Lo), [query.Lo, frag.Hi]
//	case 5: query strictly inside frag       -> [frag.Lo, query.Lo), [query.Lo, query.Hi], (query.Hi, frag.Hi]
//
// Half-open ends are realised exactly on the integer domain
// ((u, u'] = [u+1, u']). Boundary-aligned overlaps degenerate into fewer
// candidates; a query end point that coincides with a fragment end point
// produces no split at that end, matching the paper's intent that split
// points must fall strictly inside a fragment.
func SplitCandidates(frag, query Interval) []Interval {
	if !frag.Overlaps(query) {
		return nil // case 1
	}
	if query.ContainsInterval(frag) {
		return nil // case 2
	}
	splitLo := query.Lo > frag.Lo && query.Lo <= frag.Hi // query.Lo cuts frag
	splitHi := query.Hi >= frag.Lo && query.Hi < frag.Hi // just after query.Hi cuts frag
	switch {
	case splitLo && splitHi: // case 5
		return []Interval{
			{Lo: frag.Lo, Hi: query.Lo - 1},
			{Lo: query.Lo, Hi: query.Hi},
			{Lo: query.Hi + 1, Hi: frag.Hi},
		}
	case splitHi: // case 3: query covers frag's left part
		return []Interval{
			{Lo: frag.Lo, Hi: query.Hi},
			{Lo: query.Hi + 1, Hi: frag.Hi},
		}
	case splitLo: // case 4: query covers frag's right part
		return []Interval{
			{Lo: frag.Lo, Hi: query.Lo - 1},
			{Lo: query.Lo, Hi: frag.Hi},
		}
	default:
		return nil
	}
}

// CandidatesForQuery applies SplitCandidates to every fragment of an
// existing partitioning and returns the union of the per-fragment
// candidate sets, deduplicated and excluding intervals already present in
// frags. If frags is empty the partitioning is initialised with the whole
// domain first (Definition 7, case "PSTAT(V,A) = ∅").
func CandidatesForQuery(dom Interval, frags Set, query Interval) []Interval {
	q, ok := query.Intersect(dom)
	if !ok {
		return nil
	}
	if len(frags) == 0 {
		frags = Set{dom}
	}
	existing := make(map[Interval]bool, len(frags))
	for _, f := range frags {
		existing[f] = true
	}
	var out []Interval
	seen := make(map[Interval]bool)
	for _, f := range frags {
		for _, c := range SplitCandidates(f, q) {
			if existing[c] || seen[c] {
				continue
			}
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
