package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"deepsea"
	"deepsea/internal/server"
	"deepsea/internal/workload"
)

// TestHelperShardProcess is not a test: it is the subprocess body of
// the multi-process cluster smoke below. It boots a full System over
// the standard dataset, serves the shard HTTP API on an ephemeral
// port, publishes the address into the smoke directory and serves
// until killed — there is no clean shutdown path, by design.
func TestHelperShardProcess(t *testing.T) {
	dir := os.Getenv("DEEPSEA_SHARD_SMOKE_DIR")
	id := os.Getenv("DEEPSEA_SHARD_SMOKE_ID")
	if os.Getenv("DEEPSEA_SHARD_SMOKE_HELPER") != "1" || dir == "" || id == "" {
		t.Skip("shard-smoke helper process only")
	}
	sys := deepsea.New()
	if err := workload.Load(sys, workload.Generate(1, 1, nil)); err != nil {
		t.Fatalf("helper: load: %v", err)
	}
	srv := server.New(sys, server.Config{MaxInFlight: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper: listen: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "addr."+id),
		[]byte("http://"+ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("helper: write addr: %v", err)
	}
	// Serve until SIGKILL.
	_ = http.Serve(ln, srv.Handler())
}

// startShardProcess launches one shard helper subprocess and waits for
// it to publish its base URL.
func startShardProcess(t *testing.T, dir string, id int) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(dir, fmt.Sprintf("addr.%d", id))
	_ = os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperShardProcess$")
	cmd.Env = append(os.Environ(),
		"DEEPSEA_SHARD_SMOKE_HELPER=1",
		"DEEPSEA_SHARD_SMOKE_DIR="+dir,
		fmt.Sprintf("DEEPSEA_SHARD_SMOKE_ID=%d", id))
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start shard %d: %v", id, err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			return cmd, string(raw)
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatalf("shard %d never published an address; output:\n%s", id, out.String())
	return nil, ""
}

// smokePost runs one query against a coordinator URL and returns the
// status plus a canonical rendering of the merged result (columns
// header, then rows in coordinator order — the merge sorts
// deterministically, so order is part of the byte contract).
func smokePost(t *testing.T, url, spec string) (int, string, errResponse) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("decode error body (HTTP %d): %v", resp.StatusCode, err)
		}
		return resp.StatusCode, "", e
	}
	var qr Response
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	lines := make([]string, 0, len(qr.Rows)+1)
	lines = append(lines, strings.Join(qr.Columns, ","))
	for _, row := range qr.Rows {
		b, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	return resp.StatusCode, strings.Join(lines, "\n"), errResponse{}
}

// TestShardClusterSmoke is the CI multi-process acceptance test: a
// coordinator over three real shard subprocesses answers a mixed-range
// trace byte-identically to a single-shard in-process cluster, and when
// one shard is killed with SIGKILL the coordinator keeps serving the
// surviving ranges while failing queries that need the dead shard with
// a 503 naming exactly the range that is down — promptly, not by
// hanging until the test times out.
func TestShardClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()

	// Three real OS processes, each a full shard server.
	cmds := make([]*exec.Cmd, 3)
	addrs := make([]string, 3)
	for i := range cmds {
		cmds[i], addrs[i] = startShardProcess(t, dir, i)
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.ProcessState == nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		}
	})

	coord, err := New(Config{
		Addrs:          addrs,
		DomainLo:       workload.ItemSkLo,
		DomainHi:       workload.ItemSkHi,
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord.Handler())
	defer front.Close()

	// The byte reference: a 1-shard in-process cluster over the same
	// dataset — the same merge path, so any divergence is a real bug.
	ref, _ := newCluster(t, 1)
	refFront := httptest.NewServer(ref.Handler())
	defer refFront.Close()

	// A mixed-range trace: single-shard ranges, spanning ranges, and the
	// full domain, across two templates.
	var specs []string
	trace := workload.MixedTrace(12, 3, workload.Q1, 0.1, 7)
	for i, tq := range trace {
		tpl := tq.Template
		if i%3 == 1 {
			tpl = workload.Q16
		}
		specs = append(specs, fmt.Sprintf(`{"template":%q,"lo":%d,"hi":%d}`, tpl, tq.Lo, tq.Hi))
	}
	specs = append(specs, fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d}`,
		workload.ItemSkLo, workload.ItemSkHi))

	for i, spec := range specs {
		status, got, _ := smokePost(t, front.URL, spec)
		if status != http.StatusOK {
			t.Fatalf("3-process query %d (%s): HTTP %d", i, spec, status)
		}
		refStatus, want, _ := smokePost(t, refFront.URL, spec)
		if refStatus != http.StatusOK {
			t.Fatalf("reference query %d (%s): HTTP %d", i, spec, refStatus)
		}
		if got != want {
			t.Errorf("query %d (%s): 3-process result diverges from 1-shard reference:\n got %s\nwant %s",
				i, spec, got, want)
		}
	}

	// kill -9 the middle shard: no drain, no goodbye.
	var dead ShardInfo
	for _, sh := range coord.Shards() {
		if sh.Addr == addrs[1] {
			dead = sh
		}
	}
	if err := cmds[1].Process.Kill(); err != nil {
		t.Fatalf("SIGKILL shard 1: %v", err)
	}
	_ = cmds[1].Wait()
	cmds[1] = nil

	// A query needing the dead shard fails promptly with a 503 that
	// names exactly the failed range.
	start := time.Now()
	status, _, e := smokePost(t, front.URL,
		fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d}`, workload.ItemSkLo, workload.ItemSkHi))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("spanning query after kill: HTTP %d, want 503", status)
	}
	if e.FailedLo == nil || e.FailedHi == nil || *e.FailedLo != dead.Lo || *e.FailedHi != dead.Hi {
		t.Errorf("503 does not name the dead range: %+v, want [%d,%d]", e, dead.Lo, dead.Hi)
	}
	if want := fmt.Sprintf("[%d,%d]", dead.Lo, dead.Hi); !strings.Contains(e.Error, want) {
		t.Errorf("503 error %q does not mention the dead range %s", e.Error, want)
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Errorf("failed query took %v — the coordinator hung instead of failing fast", took)
	}

	// The surviving shards keep answering their own ranges.
	for _, sh := range coord.Shards() {
		if sh.Addr == dead.Addr {
			continue
		}
		status, got, _ := smokePost(t, front.URL,
			fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d}`, sh.Lo, sh.Hi))
		if status != http.StatusOK {
			t.Fatalf("surviving shard %s query: HTTP %d, want 200", sh.Addr, status)
		}
		if got == "" {
			t.Errorf("surviving shard %s returned an empty result", sh.Addr)
		}
	}
}

// TestReplicatedClusterSmoke is the replicated CI acceptance test: two
// replica groups of two real shard subprocesses each, a healthy burst
// collecting per-query reference bytes, then kill -9 of one group's
// primary MID-burst — and the rest of the burst must see zero
// client-visible failures with byte-identical results, the coordinator
// failing over to the surviving follower.
func TestReplicatedClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()

	// Four real OS processes: groups[g][r].
	cmds := make([]*exec.Cmd, 4)
	addrs := make([]string, 4)
	for i := range cmds {
		cmds[i], addrs[i] = startShardProcess(t, dir, i)
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.ProcessState == nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		}
	})

	coord, err := New(Config{
		Groups:         [][]string{{addrs[0], addrs[1]}, {addrs[2], addrs[3]}},
		DomainLo:       workload.ItemSkLo,
		DomainHi:       workload.ItemSkHi,
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord.Handler())
	defer front.Close()

	// The burst: single-group ranges, spanning ranges and the full
	// domain, across two templates.
	var specs []string
	trace := workload.MixedTrace(12, 2, workload.Q1, 0.1, 11)
	for i, tq := range trace {
		tpl := tq.Template
		if i%3 == 1 {
			tpl = workload.Q16
		}
		specs = append(specs, fmt.Sprintf(`{"template":%q,"lo":%d,"hi":%d}`, tpl, tq.Lo, tq.Hi))
	}
	specs = append(specs, fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d}`,
		workload.ItemSkLo, workload.ItemSkHi))

	// Healthy pass: collect the per-query reference bytes.
	want := make([]string, len(specs))
	for i, spec := range specs {
		status, got, e := smokePost(t, front.URL, spec)
		if status != http.StatusOK {
			t.Fatalf("healthy query %d (%s): HTTP %d: %s", i, spec, status, e.Error)
		}
		want[i] = got
	}

	// Failure pass: kill -9 group 0's primary after the first query, then
	// keep going. Every query must still succeed, byte-identically.
	killed := false
	for i, spec := range specs {
		if i == 1 && !killed {
			if err := cmds[0].Process.Kill(); err != nil {
				t.Fatalf("SIGKILL replica 0: %v", err)
			}
			_ = cmds[0].Wait()
			cmds[0] = nil
			killed = true
		}
		status, got, e := smokePost(t, front.URL, spec)
		if status != http.StatusOK {
			t.Fatalf("mid-burst query %d (%s) after primary kill: HTTP %d: %s — client-visible failure",
				i, spec, status, e.Error)
		}
		if got != want[i] {
			t.Errorf("query %d (%s): result with dead primary diverges from healthy reference:\n got %s\nwant %s",
				i, spec, got, want[i])
		}
	}
	if coord.failovers.Load() == 0 {
		t.Error("no failover recorded despite a dead primary — the kill did not exercise the path")
	}

	// The coordinator's health surface reflects the loss.
	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" {
		t.Errorf("healthz status %q with a dead replica, want degraded", hz.Status)
	}
}
