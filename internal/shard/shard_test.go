package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"deepsea"
	"deepsea/internal/server"
	"deepsea/internal/workload"
)

// --- merge-layer property tests ----------------------------------------

// wireRows round-trips a report's rows through JSON exactly as the
// coordinator receives them from a shard (numbers as json.Number).
func wireRows(t *testing.T, cols []string, rows [][]any) [][]any {
	t.Helper()
	body, err := json.Marshal(map[string]any{"columns": cols, "rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	var wire struct {
		Rows [][]any `json:"rows"`
	}
	if err := dec.Decode(&wire); err != nil {
		t.Fatal(err)
	}
	return wire.Rows
}

// fingerprint renders rows as sorted JSON lines — the byte-identity
// yardstick used across the shard tests.
func fingerprint(t *testing.T, cols []string, rows [][]any) string {
	t.Helper()
	lines := make([]string, 0, len(rows))
	for _, r := range rows {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	return strings.Join(append([]string{strings.Join(cols, ",")}, lines...), "\n")
}

// partitionSystem builds a System holding exactly the rows of the
// global test table whose index satisfies keep.
func partitionSystem(keep func(i int) bool) *deepsea.System {
	sys := deepsea.New()
	sys.MustCreateTable(deepsea.TableDef{
		Name: "t",
		Columns: []deepsea.ColumnDef{
			{Name: "item_sk", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: 9999},
			{Name: "grp", Kind: deepsea.String},
			{Name: "v", Kind: deepsea.Float},
			{Name: "q", Kind: deepsea.Int},
		},
	})
	rng := rand.New(rand.NewSource(99))
	groups := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 600; i++ {
		// Binary-exact values (quarter units) so the unsharded engine's
		// plain float fold is itself exact, making byte-equality against
		// it a fair demand (the cross-shard-count floor never needs this;
		// its reference is the 1-shard merge).
		v := float64(rng.Intn(4000)) * 0.25
		row := []any{int64(rng.Intn(10000)), groups[rng.Intn(len(groups))], v, int64(rng.Intn(9) + 1)}
		if keep(i) {
			sys.MustInsert("t", row)
		}
	}
	return sys
}

func partitionQuery(partial bool) *deepsea.Query {
	q := deepsea.Scan("t").Where("item_sk", 0, 9999).GroupBy("grp").Agg(
		deepsea.Count("n"),
		deepsea.Sum("v", "total"),
		deepsea.Avg("v", "mean"),
		deepsea.Min("q", "qmin"),
		deepsea.Max("q", "qmax"),
	)
	if partial {
		q = q.Partial()
	}
	return q
}

// TestAnyPartitionMergesIdentically is the merge determinism property:
// for k in {1, 2, 3, 7}, ANY assignment of the dataset's rows to k
// shards — including assignments that leave some shards empty — merges
// through MergePartials to a result byte-identical to the unsharded
// run. Row placement is randomized per trial, deliberately ignoring
// range ownership: the merge contract must not depend on how rows were
// partitioned, only on the multiset of rows.
func TestAnyPartitionMergesIdentically(t *testing.T) {
	whole := partitionSystem(func(int) bool { return true })
	rep, err := whole.Run(partitionQuery(false))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, rep.Columns(), wireRows(t, rep.Columns(), rep.Rows()))

	for _, k := range []int{1, 2, 3, 7} {
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(int64(k*100 + trial)))
			assign := make([]int, 600)
			for i := range assign {
				assign[i] = rng.Intn(k)
			}
			if k >= 3 && trial == 0 {
				// Force an empty shard: everything assigned to shard 2
				// moves to shard 0.
				for i := range assign {
					if assign[i] == 2 {
						assign[i] = 0
					}
				}
			}
			var cols []string
			rowSets := make([][][]any, k)
			for s := 0; s < k; s++ {
				sys := partitionSystem(func(i int) bool { return assign[i] == s })
				prep, err := sys.Run(partitionQuery(true))
				if err != nil {
					t.Fatal(err)
				}
				cols = prep.Columns()
				rowSets[s] = wireRows(t, prep.Columns(), prep.Rows())
			}
			outCols, outRows, err := MergePartials(cols, rowSets)
			if err != nil {
				t.Fatalf("k=%d trial=%d: %v", k, trial, err)
			}
			got := fingerprint(t, outCols, outRows)
			if got != want {
				t.Fatalf("k=%d trial=%d: merged result differs from unsharded run\ngot:\n%s\nwant:\n%s",
					k, trial, got, want)
			}
		}
	}
}

// TestMergeSingleGroup covers the degenerate single-group (global
// aggregate) shape: no group-by columns at all.
func TestMergeSingleGroup(t *testing.T) {
	mkSys := func(keep func(i int) bool) *deepsea.System {
		sys := deepsea.New()
		sys.MustCreateTable(deepsea.TableDef{
			Name: "g",
			Columns: []deepsea.ColumnDef{
				{Name: "k", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: 99},
				{Name: "v", Kind: deepsea.Float},
			},
		})
		for i := 0; i < 100; i++ {
			if keep(i) {
				sys.MustInsert("g", []any{int64(i), float64(i) * 0.5})
			}
		}
		return sys
	}
	q := func(partial bool) *deepsea.Query {
		qq := deepsea.Scan("g").Where("k", 0, 99).GroupBy().Agg(
			deepsea.Count("n"), deepsea.Sum("v", "total"))
		if partial {
			qq = qq.Partial()
		}
		return qq
	}
	rep, err := mkSys(func(int) bool { return true }).Run(q(false))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, rep.Columns(), wireRows(t, rep.Columns(), rep.Rows()))

	var cols []string
	var rowSets [][][]any
	for s := 0; s < 3; s++ {
		prep, err := mkSys(func(i int) bool { return i%3 == s }).Run(q(true))
		if err != nil {
			t.Fatal(err)
		}
		cols = prep.Columns()
		rowSets = append(rowSets, wireRows(t, prep.Columns(), prep.Rows()))
	}
	outCols, outRows, err := MergePartials(cols, rowSets)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, outCols, outRows); got != want {
		t.Fatalf("global aggregate merge differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// --- range / heat unit tests -------------------------------------------

func TestEvenSplitAndRoute(t *testing.T) {
	bounds := evenSplit(0, 99, 3)
	shards := make([]ShardInfo, len(bounds))
	for i, b := range bounds {
		shards[i] = ShardInfo{Addr: fmt.Sprintf("s%d", i), Lo: b[0], Hi: b[1]}
	}
	if err := validate(shards, 0, 99); err != nil {
		t.Fatalf("even split does not tile: %v", err)
	}
	if got := route(shards, 40, 99); len(got) != 2 {
		t.Fatalf("route(40,99) = %d slices, want 2", len(got))
	}
	one := route(shards, 5, 10)
	if len(one) != 1 || one[0].shard != 0 || one[0].lo != 5 || one[0].hi != 10 {
		t.Fatalf("route(5,10) = %+v", one)
	}
	// Slices must tile the query range exactly.
	all := route(shards, 0, 99)
	var covered int64
	for _, sl := range all {
		covered += sl.hi - sl.lo + 1
	}
	if covered != 100 {
		t.Fatalf("slices cover %d keys, want 100", covered)
	}
}

func TestHeatBoundariesFollowSkew(t *testing.T) {
	h := newHeatMap(0, 9999)
	// 90% of queries hit the first tenth of the domain.
	for i := 0; i < 900; i++ {
		h.record(0, 999)
	}
	for i := 0; i < 100; i++ {
		h.record(0, 9999)
	}
	bounds := h.boundaries(3)
	if len(bounds) != 3 {
		t.Fatalf("boundaries = %v", bounds)
	}
	// The hottest shard's range must be far narrower than an even split.
	if w := bounds[0][1] - bounds[0][0] + 1; w > 2500 {
		t.Fatalf("hot shard owns %d keys; equi-heat should shrink it below 2500", w)
	}
	// And the ranges still tile the domain.
	shards := make([]ShardInfo, len(bounds))
	for i, b := range bounds {
		shards[i] = ShardInfo{Addr: "x", Lo: b[0], Hi: b[1]}
	}
	if err := validate(shards, 0, 9999); err != nil {
		t.Fatal(err)
	}
}

// --- in-process cluster tests ------------------------------------------

var (
	clusterDataOnce sync.Once
	clusterData     *workload.Data
)

// newCluster boots k shard servers (each a full System with the same
// workload data) plus a coordinator routing the item_sk domain across
// them. Returns the coordinator and a closer.
func newCluster(t *testing.T, k int) (*Coordinator, []*httptest.Server) {
	t.Helper()
	clusterDataOnce.Do(func() { clusterData = workload.Generate(1, 1, nil) })
	var servers []*httptest.Server
	var addrs []string
	for i := 0; i < k; i++ {
		sys := deepsea.New()
		if err := workload.Load(sys, clusterData); err != nil {
			t.Fatal(err)
		}
		srv := server.New(sys, server.Config{MaxInFlight: 4})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		servers = append(servers, ts)
		addrs = append(addrs, ts.URL)
	}
	c, err := New(Config{
		Addrs:          addrs,
		DomainLo:       workload.ItemSkLo,
		DomainHi:       workload.ItemSkHi,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c, servers
}

func coordQuery(t *testing.T, c *Coordinator, spec string) (*http.Response, Response, errResponse) {
	t.Helper()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	dec := json.NewDecoder(io2(&buf, resp))
	dec.UseNumber()
	var out Response
	var eresp errResponse
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&out); err != nil {
			t.Fatalf("decode: %v (body %q)", err, buf.String())
		}
	} else {
		if err := dec.Decode(&eresp); err != nil {
			t.Fatalf("decode error body: %v (body %q)", err, buf.String())
		}
	}
	return resp, out, eresp
}

// io2 tees the response body so failures can show it.
func io2(buf *bytes.Buffer, resp *http.Response) *bytes.Buffer {
	buf.ReadFrom(resp.Body)
	return buf
}

// TestScatterGatherIdenticalAcrossShardCounts is the tentpole
// correctness claim, in process: the same spanning query answered by
// 1-, 2- and 3-shard clusters produces byte-identical merged results.
func TestScatterGatherIdenticalAcrossShardCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	specs := []string{
		fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d}`, workload.ItemSkLo, workload.ItemSkHi),
		`{"template":"Q30","lo":100000,"hi":300000}`,
		`{"template":"Q16","lo":0,"hi":250000}`,
	}
	var want []string
	for _, k := range []int{1, 2, 3} {
		c, _ := newCluster(t, k)
		for si, spec := range specs {
			resp, out, eresp := coordQuery(t, c, spec)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("k=%d spec %d: status %d: %s", k, si, resp.StatusCode, eresp.Error)
			}
			fp := fingerprint(t, out.Columns, out.Rows)
			if k == 1 {
				want = append(want, fp)
				continue
			}
			if fp != want[si] {
				t.Errorf("k=%d spec %d: result differs from 1-shard run", k, si)
			}
		}
	}
}

// TestSingleRangeRoutesToOneShard checks the router sends a query whose
// range lies inside one shard to that shard only.
func TestSingleRangeRoutesToOneShard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	c, _ := newCluster(t, 3)
	resp, out, eresp := coordQuery(t, c, `{"template":"Q1","lo":1000,"hi":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, eresp.Error)
	}
	if out.ShardsContacted != 1 {
		t.Fatalf("shards contacted = %d, want 1", out.ShardsContacted)
	}
}

// TestCoordinatorNamesFailedRange kills one shard and checks a spanning
// query fails fast with a 503 naming the dead shard's range slice.
func TestCoordinatorNamesFailedRange(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	c, servers := newCluster(t, 3)
	dead := c.Shards()[1]
	servers[1].Close()

	spec := fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d}`, workload.ItemSkLo, workload.ItemSkHi)
	resp, _, eresp := coordQuery(t, c, spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if eresp.FailedLo == nil || eresp.FailedHi == nil ||
		*eresp.FailedLo != dead.Lo || *eresp.FailedHi != dead.Hi {
		t.Fatalf("503 does not name the dead range [%d,%d]: %+v", dead.Lo, dead.Hi, eresp)
	}
	if !strings.Contains(eresp.Error, fmt.Sprintf("[%d,%d]", dead.Lo, dead.Hi)) {
		t.Fatalf("error text does not name the range: %q", eresp.Error)
	}

	// Queries inside surviving shards still work.
	resp, out, eresp := coordQuery(t, c, `{"template":"Q1","lo":1000,"hi":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surviving-shard query: status %d: %s", resp.StatusCode, eresp.Error)
	}
	if out.ShardsContacted != 1 {
		t.Fatalf("surviving-shard query contacted %d shards", out.ShardsContacted)
	}
}

// TestRebalanceMovesHotBoundary drives a skewed trace, rebalances, and
// checks (a) boundaries moved toward the hotspot, (b) epochs advanced,
// (c) results before and after are byte-identical.
func TestRebalanceMovesHotBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	c, _ := newCluster(t, 3)
	spec := fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d}`, workload.ItemSkLo, workload.ItemSkHi)
	resp, before, eresp := coordQuery(t, c, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("before: status %d: %s", resp.StatusCode, eresp.Error)
	}

	// Hotspot: hammer the first 5% of the domain.
	hotHi := int64(workload.ItemSkLo + (workload.ItemSkHi-workload.ItemSkLo)/20)
	for i := 0; i < 200; i++ {
		c.heatMu.Lock()
		c.heat.record(workload.ItemSkLo, hotHi)
		c.heatMu.Unlock()
	}
	oldShards := c.Shards()
	moved, err := c.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("rebalance did not move boundaries despite skew")
	}
	newShards := c.Shards()
	if newShards[0].Hi >= oldShards[0].Hi {
		t.Fatalf("hot shard did not shrink: [%d,%d] -> [%d,%d]",
			oldShards[0].Lo, oldShards[0].Hi, newShards[0].Lo, newShards[0].Hi)
	}
	for i := range newShards {
		if newShards[i].Epoch <= oldShards[i].Epoch {
			t.Fatalf("shard %d epoch did not advance: %d -> %d", i, oldShards[i].Epoch, newShards[i].Epoch)
		}
	}

	resp, after, eresp := coordQuery(t, c, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after: status %d: %s", resp.StatusCode, eresp.Error)
	}
	if fingerprint(t, before.Columns, before.Rows) != fingerprint(t, after.Columns, after.Rows) {
		t.Fatal("results differ across a rebalance")
	}
}

// TestStaleEpochRejected checks the fencing token: a request carrying
// an outdated epoch is refused with 409 naming the true ownership.
func TestStaleEpochRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	c, servers := newCluster(t, 1)
	sh := c.Shards()[0]
	body := fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d,"epoch":%d}`, sh.Lo, sh.Lo+100, sh.Epoch+7)
	resp, err := http.Post(servers[0].URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch: status %d, want 409", resp.StatusCode)
	}
	var re struct {
		Error      string `json:"error"`
		OwnedLo    int64  `json:"owned_lo"`
		OwnedHi    int64  `json:"owned_hi"`
		RangeEpoch uint64 `json:"range_epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&re); err != nil {
		t.Fatal(err)
	}
	if re.OwnedLo != sh.Lo || re.OwnedHi != sh.Hi || re.RangeEpoch != sh.Epoch {
		t.Fatalf("409 body does not report true ownership: %+v (want [%d,%d]@%d)",
			re, sh.Lo, sh.Hi, sh.Epoch)
	}
}
