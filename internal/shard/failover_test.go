package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"deepsea"
	"deepsea/internal/leakcheck"
	"deepsea/internal/server"
	"deepsea/internal/workload"
)

// newReplicatedCluster boots k replica groups of r shard servers each
// (every server a full System over the same dataset) behind a
// coordinator. mut, when non-nil, tweaks the coordinator config before
// New. Returns the coordinator and the backends as groups[gi][ri].
func newReplicatedCluster(t *testing.T, k, r int, mut func(*Config)) (*Coordinator, [][]*httptest.Server) {
	t.Helper()
	clusterDataOnce.Do(func() { clusterData = workload.Generate(1, 1, nil) })
	groups := make([][]*httptest.Server, k)
	addrGroups := make([][]string, k)
	for gi := 0; gi < k; gi++ {
		for ri := 0; ri < r; ri++ {
			sys := deepsea.New()
			if err := workload.Load(sys, clusterData); err != nil {
				t.Fatal(err)
			}
			srv := server.New(sys, server.Config{MaxInFlight: 4})
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			groups[gi] = append(groups[gi], ts)
			addrGroups[gi] = append(addrGroups[gi], ts.URL)
		}
	}
	cfg := Config{
		Groups:         addrGroups,
		DomainLo:       workload.ItemSkLo,
		DomainHi:       workload.ItemSkHi,
		RequestTimeout: 30 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c, groups
}

func spanningSpec() string {
	return fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d}`, workload.ItemSkLo, workload.ItemSkHi)
}

// TestReplicatedInitPushesRoles verifies a handoff reaches every
// replica of a group, assigning primary/follower roles.
func TestReplicatedInitPushesRoles(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	leakcheck.Check(t)
	c, groups := newReplicatedCluster(t, 2, 2, nil)
	for gi, sh := range c.Shards() {
		if len(sh.Replicas) != 2 {
			t.Fatalf("group %d routing entry has %d replicas, want 2", gi, len(sh.Replicas))
		}
		for ri, ts := range groups[gi] {
			resp, err := http.Get(ts.URL + "/admin/range")
			if err != nil {
				t.Fatal(err)
			}
			var rr struct {
				Lo    int64  `json:"lo"`
				Hi    int64  `json:"hi"`
				Epoch uint64 `json:"epoch"`
				Role  string `json:"role"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if rr.Lo != sh.Lo || rr.Hi != sh.Hi || rr.Epoch != sh.Epoch {
				t.Fatalf("group %d replica %d owns [%d,%d]@%d, want [%d,%d]@%d",
					gi, ri, rr.Lo, rr.Hi, rr.Epoch, sh.Lo, sh.Hi, sh.Epoch)
			}
			want := server.RoleFollower
			if ri == 0 {
				want = server.RolePrimary
			}
			if rr.Role != want {
				t.Fatalf("group %d replica %d role %q, want %q", gi, ri, rr.Role, want)
			}
		}
	}
}

// TestFailoverToFollower is the tentpole availability claim in process:
// with the primary of one group dead, a spanning query still succeeds —
// answered by the follower — and the merged bytes are identical to the
// healthy run's.
func TestFailoverToFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	leakcheck.Check(t)
	c, groups := newReplicatedCluster(t, 2, 2, func(cfg *Config) {
		cfg.HedgeDelay = -1 // isolate failover from hedging
	})

	resp, healthy, eresp := coordQuery(t, c, spanningSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy query: status %d: %s", resp.StatusCode, eresp.Error)
	}
	want := fingerprint(t, healthy.Columns, healthy.Rows)

	groups[0][0].Close() // kill group 0's primary

	resp, out, eresp := coordQuery(t, c, spanningSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query with dead primary: status %d: %s", resp.StatusCode, eresp.Error)
	}
	if out.Failovers < 1 {
		t.Fatalf("response reports %d failovers, want ≥1", out.Failovers)
	}
	if got := fingerprint(t, out.Columns, out.Rows); got != want {
		t.Fatalf("failover result diverges from healthy run:\n got %s\nwant %s", got, want)
	}
	if c.failovers.Load() == 0 {
		t.Fatal("coordinator failover counter did not move")
	}

	// Preference learning: the follower answered, so the next query goes
	// straight to it — no failover, no error-path cost.
	resp, out, eresp = coordQuery(t, c, spanningSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second query: status %d: %s", resp.StatusCode, eresp.Error)
	}
	if out.Failovers != 0 {
		t.Fatalf("second query still paid %d failovers; preferred replica not updated", out.Failovers)
	}
}

// TestAllReplicasDeadFailsNamingRange kills a whole group and checks the
// coordinator still fails fast with a 503 naming the dead range.
func TestAllReplicasDeadFailsNamingRange(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	leakcheck.Check(t)
	c, groups := newReplicatedCluster(t, 2, 2, func(cfg *Config) {
		cfg.HedgeDelay = -1
	})
	dead := c.Shards()[1]
	groups[1][0].Close()
	groups[1][1].Close()

	start := time.Now()
	resp, _, eresp := coordQuery(t, c, spanningSpec())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if eresp.FailedLo == nil || eresp.FailedHi == nil ||
		*eresp.FailedLo != dead.Lo || *eresp.FailedHi != dead.Hi {
		t.Fatalf("503 does not name the dead range [%d,%d]: %+v", dead.Lo, dead.Hi, eresp)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("dead-group failure took %v; want prompt connection-refused failover", took)
	}
}

// TestHedgedRequestWinsOverStraggler injects a long straggler latency on
// the primary only and checks the hedge fires, the follower's answer
// wins well before the straggler would have finished, and the losing
// attempt is cancelled (leakcheck).
func TestHedgedRequestWinsOverStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	leakcheck.Check(t)
	var ct *ChaosTransport
	c, _ := newReplicatedCluster(t, 1, 2, func(cfg *Config) {
		u, err := url.Parse(cfg.Groups[0][0])
		if err != nil {
			t.Fatal(err)
		}
		ct = &ChaosTransport{
			Seed:        3,
			LatencyProb: 1,
			Latency:     20 * time.Second,
			Hosts:       map[string]bool{u.Host: true},
		}
		ct.SetArmed(false) // keep Init's handoff pushes clean
		cfg.HedgeDelay = 50 * time.Millisecond
		cfg.Transport = ct
	})
	ct.SetArmed(true)

	start := time.Now()
	resp, out, eresp := coordQuery(t, c, spanningSpec())
	took := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, eresp.Error)
	}
	if out.Hedged < 1 {
		t.Fatalf("response reports %d hedges, want ≥1", out.Hedged)
	}
	if took > 10*time.Second {
		t.Fatalf("hedged query took %v; the straggler latency leaked into the critical path", took)
	}
	if c.hedgeWins.Load() == 0 {
		t.Fatal("hedge win counter did not move")
	}
	// Init's pushes also traverse the chaos transport, but the handoff
	// POSTs are admin traffic; only the query path should have hedged.
	if c.hedges.Load() != uint64(out.Hedged) {
		t.Fatalf("coordinator hedges %d != response hedges %d", c.hedges.Load(), out.Hedged)
	}
}

// TestBreakerBoundsDeadReplicaCost pins the breaker's purpose: after it
// opens on a dead primary, queries forced back onto that group stop
// paying per-query detection — the dead replica is skipped outright
// (short-circuits move, failovers stop).
func TestBreakerBoundsDeadReplicaCost(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	leakcheck.Check(t)
	c, groups := newReplicatedCluster(t, 1, 2, func(cfg *Config) {
		cfg.HedgeDelay = -1
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = time.Hour // no half-open probe mid-test
	})
	groups[0][0].Close()
	primary := c.Shards()[0].Replicas[0]

	runOne := func() Response {
		t.Helper()
		// Pin preference back onto the dead primary so every query pays —
		// or is saved from — the detection cost, isolating the breaker
		// from preference learning.
		c.preferred[0].Store(0)
		resp, out, eresp := coordQuery(t, c, spanningSpec())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, eresp.Error)
		}
		return out
	}

	for i := 0; i < 3; i++ {
		if out := runOne(); out.Failovers < 1 {
			t.Fatalf("pre-trip query %d reported %d failovers, want ≥1", i, out.Failovers)
		}
	}
	if st := c.replicas[primary].br.State(); st != breakerOpen {
		t.Fatalf("breaker state %v after %d consecutive failures, want open", st, 3)
	}
	// With the breaker open, the dead primary is skipped without a
	// network attempt: no failover retries, no connection errors.
	for i := 0; i < 3; i++ {
		if out := runOne(); out.Failovers != 0 {
			t.Fatalf("post-trip query %d still paid %d failovers", i, out.Failovers)
		}
	}
	opens, shorts, _ := c.replicas[primary].br.Counters()
	if opens < 1 || shorts < 3 {
		t.Fatalf("breaker counters opens=%d shortCircuits=%d, want ≥1, ≥3", opens, shorts)
	}
}

// TestProberRevivesReplica checks the background prober readmits a
// healthy replica: successful probes close its breaker even when the
// query path never touches it (breaker cooldown set far past the test).
func TestProberRevivesReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	leakcheck.Check(t)
	c, _ := newReplicatedCluster(t, 1, 2, func(cfg *Config) {
		cfg.ProbeInterval = 25 * time.Millisecond
		cfg.BreakerCooldown = time.Hour // only the prober may close it
	})
	follower := c.Shards()[0].Replicas[1]

	// Trip the live follower's breaker by hand (as if it had flapped),
	// then verify the prober's successful /healthz probes close it.
	for i := 0; i < 10; i++ {
		c.replicas[follower].br.Failure(time.Now())
	}
	if st := c.replicas[follower].br.State(); st != breakerOpen {
		t.Fatalf("setup: breaker %v, want open", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.replicas[follower].br.State() == breakerClosed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := c.replicas[follower].br.State(); st != breakerClosed {
		t.Fatalf("prober did not close the healthy replica's breaker (state %v)", st)
	}
	// And the probe observation reached the replica's bookkeeping.
	probed, ok, epoch, _, _ := c.replicas[follower].probeSnapshot()
	if !probed || !ok || epoch != c.Shards()[0].Epoch {
		t.Fatalf("probe snapshot = (probed %v, ok %v, epoch %d), want (true, true, %d)",
			probed, ok, epoch, c.Shards()[0].Epoch)
	}
}

// TestCoordinatorAdoptsTrueOwnershipOn409 is the stale-epoch recovery
// path (satellite): the cluster moves on without the coordinator (a
// handoff it never saw), a scattered subquery draws a 409 carrying the
// true ownership, and the coordinator refreshes its routing table from
// the shards and retries — the client sees one clean 200, never the
// stale window.
func TestCoordinatorAdoptsTrueOwnershipOn409(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	leakcheck.Check(t)
	c, groups := newReplicatedCluster(t, 2, 1, func(cfg *Config) {
		cfg.HedgeDelay = -1
	})
	old := c.Shards()
	if len(old) != 2 {
		t.Fatalf("%d groups, want 2", len(old))
	}

	// Move the boundary behind the coordinator's back: push both shards
	// new ranges at epochs far beyond the routing table's.
	mid := old[0].Hi - (old[0].Hi-old[0].Lo)/3
	push := func(url string, lo, hi int64, epoch uint64) {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"lo": lo, "hi": hi, "epoch": epoch})
		resp, err := http.Post(url+"/admin/range", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("direct push to %s: HTTP %d", url, resp.StatusCode)
		}
	}
	push(groups[0][0].URL, old[0].Lo, mid, old[0].Epoch+10)
	push(groups[1][0].URL, mid+1, old[1].Hi, old[1].Epoch+10)

	// The very next spanning query must succeed without a client-visible
	// error: 409 → refresh → retry happens inside the coordinator.
	resp, out, eresp := coordQuery(t, c, spanningSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query across stale table: status %d: %s", resp.StatusCode, eresp.Error)
	}
	if len(out.Rows) == 0 {
		t.Fatal("query across stale table returned no rows")
	}
	if c.refreshes.Load() == 0 {
		t.Fatal("routing refresh counter did not move")
	}

	// The adopted table reflects the true ownership.
	fresh := c.Shards()
	if fresh[0].Hi != mid || fresh[1].Lo != mid+1 {
		t.Fatalf("routing table not adopted: group0 [%d,%d], group1 [%d,%d]; want split at %d",
			fresh[0].Lo, fresh[0].Hi, fresh[1].Lo, fresh[1].Hi, mid)
	}
	if fresh[0].Epoch != old[0].Epoch+10 || fresh[1].Epoch != old[1].Epoch+10 {
		t.Fatalf("epochs not adopted: %d, %d", fresh[0].Epoch, fresh[1].Epoch)
	}

	// And the result matches a clean run over the adopted table.
	resp2, out2, _ := coordQuery(t, c, spanningSpec())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-adoption query: status %d", resp2.StatusCode)
	}
	if fingerprint(t, out.Columns, out.Rows) != fingerprint(t, out2.Columns, out2.Rows) {
		t.Fatal("result answered during adoption differs from post-adoption result")
	}
}

// TestStaleRoutingRefreshFailureIs503 pins the unhappy half of the
// stale-epoch recovery: a replica claims a newer epoch, but the
// shards' claimed ownership no longer tiles the domain, so the routing
// refresh is rejected and keeps the old table. The client must get a
// real 503 naming the conflict — not an aborted connection (the
// pre-fix behavior wrote WriteHeader(0), which panics).
func TestStaleRoutingRefreshFailureIs503(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	leakcheck.Check(t)
	c, groups := newReplicatedCluster(t, 2, 1, func(cfg *Config) {
		cfg.HedgeDelay = -1
	})
	old := c.Shards()

	// Shrink group 0's claim at a far-future epoch without moving group
	// 1, leaving a gap the refreshed table cannot tile.
	mid := old[0].Lo + (old[0].Hi-old[0].Lo)/2
	body, _ := json.Marshal(map[string]any{"lo": old[0].Lo, "hi": mid, "epoch": old[0].Epoch + 10})
	presp, err := http.Post(groups[0][0].URL+"/admin/range", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("direct push: HTTP %d", presp.StatusCode)
	}

	resp, _, eresp := coordQuery(t, c, spanningSpec())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(eresp.Error, "stale") || !strings.Contains(eresp.Error, "refresh failed") {
		t.Fatalf("503 body does not name the stale conflict and failed refresh: %q", eresp.Error)
	}
	if eresp.FailedLo == nil || eresp.FailedHi == nil {
		t.Fatalf("503 body does not name the conflicted range: %+v", eresp)
	}
	// The invalid refresh was rejected: the old table is intact.
	if got := c.Shards(); got[0].Hi != old[0].Hi || got[0].Epoch != old[0].Epoch {
		t.Fatalf("rejected refresh mutated the table: group0 [%d,%d]@%d", got[0].Lo, got[0].Hi, got[0].Epoch)
	}
}

// TestProberTreatsUnhealthyHealthzAsFailure: a replica that is
// reachable but reports itself unhealthy (non-2xx /healthz, e.g.
// draining) must not have its breaker closed or its primary preference
// restored by the prober — that would flap against the query path
// re-tripping it.
func TestProberTreatsUnhealthyHealthzAsFailure(t *testing.T) {
	leakcheck.Check(t)
	unhealthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"status":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer unhealthy.Close()
	c, err := New(Config{
		Groups:   [][]string{{unhealthy.URL, "http://127.0.0.1:0"}},
		DomainLo: 0, DomainHi: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs := c.replicas[unhealthy.URL]
	for i := 0; i < 3; i++ {
		rs.br.Failure(time.Now()) // breaker open (default threshold 3)
	}
	c.preferred[0].Store(1) // failover moved preference to the follower

	c.probeOne(unhealthy.URL, 0, server.RolePrimary, 0, 10, 1)

	if st := rs.br.State(); st == breakerClosed {
		t.Fatal("unhealthy /healthz closed the breaker")
	}
	if p := c.preferred[0].Load(); p != 1 {
		t.Fatalf("unhealthy primary restored as preferred (preferred=%d)", p)
	}
	probed, ok, _, errStr, _ := rs.probeSnapshot()
	if !probed || ok || !strings.Contains(errStr, "healthz") {
		t.Fatalf("probe snapshot = (probed %v, ok %v, err %q), want failed probe with healthz error",
			probed, ok, errStr)
	}
}

// TestHealthzReportsBreakerState checks the operational surface: a dead
// replica shows up on /healthz as unreachable with its breaker state,
// and the coordinator degrades instead of lying.
func TestHealthzReportsBreakerState(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	leakcheck.Check(t)
	c, groups := newReplicatedCluster(t, 2, 2, func(cfg *Config) {
		cfg.HedgeDelay = -1
	})
	groups[0][0].Close()
	// A couple of queries to trip detection.
	for i := 0; i < 3; i++ {
		c.preferred[0].Store(0)
		coordQuery(t, c, spanningSpec())
	}

	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" {
		t.Fatalf("healthz status %q with a dead replica, want degraded", hz.Status)
	}
	var sawDead bool
	for _, sh := range hz.Shards {
		for _, rh := range sh.ReplicaHealth {
			if !rh.Reachable {
				sawDead = true
			}
		}
	}
	if !sawDead {
		t.Fatal("healthz does not mark the dead replica unreachable")
	}

	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sz statzResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sz); err != nil {
		t.Fatal(err)
	}
	if sz.Failovers == 0 {
		t.Fatal("statz failovers counter is zero after routing around a dead replica")
	}
	if sz.BreakerOpens == 0 {
		t.Fatal("statz breaker_opens is zero after a replica died")
	}
}
