package shard

import (
	"testing"
	"time"
)

// TestBreakerStateMachine walks the full closed → open → half-open →
// closed cycle, including the failed-probe re-trip.
func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, time.Minute)
	now := time.Unix(1000, 0)

	if ok, probe := b.Allow(now); !ok || probe {
		t.Fatalf("closed breaker: Allow = (%v,%v), want (true,false)", ok, probe)
	}
	// Two failures stay closed; an interleaved success resets the count.
	b.Failure(now)
	b.Failure(now)
	if s := b.State(); s != breakerClosed {
		t.Fatalf("after 2 failures: state %v, want closed", s)
	}
	b.Success()
	b.Failure(now)
	b.Failure(now)
	if s := b.State(); s != breakerClosed {
		t.Fatalf("success must reset the consecutive-failure count; state %v", s)
	}

	// The third consecutive failure trips it.
	b.Failure(now)
	if s := b.State(); s != breakerOpen {
		t.Fatalf("after threshold failures: state %v, want open", s)
	}
	if ok, _ := b.Allow(now.Add(time.Second)); ok {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	// Cooldown elapsed: exactly one probe is admitted.
	later := now.Add(2 * time.Minute)
	ok, probe := b.Allow(later)
	if !ok || !probe {
		t.Fatalf("post-cooldown Allow = (%v,%v), want (true,true)", ok, probe)
	}
	if s := b.State(); s != breakerHalfOpen {
		t.Fatalf("state %v, want half-open", s)
	}
	if ok, _ := b.Allow(later); ok {
		t.Fatal("half-open breaker admitted a second request while the probe is in flight")
	}

	// Probe failure re-opens and restarts the cooldown.
	b.Failure(later)
	if s := b.State(); s != breakerOpen {
		t.Fatalf("failed probe: state %v, want open", s)
	}
	if ok, _ := b.Allow(later.Add(time.Second)); ok {
		t.Fatal("re-opened breaker admitted a request inside the restarted cooldown")
	}

	// Second probe succeeds: closed again, requests flow.
	ok, probe = b.Allow(later.Add(2 * time.Minute))
	if !ok || !probe {
		t.Fatal("second post-cooldown probe refused")
	}
	b.Success()
	if s := b.State(); s != breakerClosed {
		t.Fatalf("after successful probe: state %v, want closed", s)
	}
	if ok, probe := b.Allow(later.Add(3 * time.Minute)); !ok || probe {
		t.Fatalf("re-closed breaker: Allow = (%v,%v), want (true,false)", ok, probe)
	}

	opens, shorts, probes := b.Counters()
	if opens != 2 || probes != 2 || shorts < 2 {
		t.Fatalf("counters = opens %d, shortCircuits %d, probes %d; want 2, ≥2, 2",
			opens, shorts, probes)
	}
}

// TestBreakerLostProbeReprobes pins the liveness guarantee: a probe
// whose outcome never arrives (the attempt carrying it was discarded
// without reporting) must not exclude the replica forever — after a
// further cooldown the breaker treats it as lost and re-probes.
func TestBreakerLostProbeReprobes(t *testing.T) {
	b := newBreaker(1, time.Minute)
	now := time.Unix(3000, 0)
	b.Failure(now) // trip

	probeAt := now.Add(2 * time.Minute)
	if ok, probe := b.Allow(probeAt); !ok || !probe {
		t.Fatalf("post-cooldown Allow = (%v,%v), want (true,true)", ok, probe)
	}
	// The probe's outcome is lost. While it is fresh: short-circuit.
	if ok, _ := b.Allow(probeAt.Add(30 * time.Second)); ok {
		t.Fatal("half-open breaker admitted a request while the probe is fresh")
	}
	// A cooldown later the lost probe is abandoned and a new one admitted.
	ok, probe := b.Allow(probeAt.Add(2 * time.Minute))
	if !ok || !probe {
		t.Fatalf("lost probe permanently excluded the replica: Allow = (%v,%v)", ok, probe)
	}
	b.Success()
	if s := b.State(); s != breakerClosed {
		t.Fatalf("after successful re-probe: state %v, want closed", s)
	}
}

// TestBreakerAbandonReleasesProbe: Abandon clears the in-flight probe
// without judging the replica, so the next Allow re-probes immediately
// instead of waiting out the lost-probe cooldown.
func TestBreakerAbandonReleasesProbe(t *testing.T) {
	b := newBreaker(1, time.Minute)
	now := time.Unix(4000, 0)
	b.Failure(now)
	later := now.Add(2 * time.Minute)
	if ok, probe := b.Allow(later); !ok || !probe {
		t.Fatalf("post-cooldown Allow = (%v,%v), want (true,true)", ok, probe)
	}
	b.Abandon()
	if s := b.State(); s != breakerHalfOpen {
		t.Fatalf("Abandon changed state to %v, want half-open", s)
	}
	if ok, probe := b.Allow(later.Add(time.Second)); !ok || !probe {
		t.Fatalf("abandoned probe did not release the half-open slot: Allow = (%v,%v)", ok, probe)
	}
}

// TestBreakerOpenFailureIsInert verifies straggling failures arriving
// after the trip neither extend the cooldown nor double-count opens.
func TestBreakerOpenFailureIsInert(t *testing.T) {
	b := newBreaker(1, time.Minute)
	now := time.Unix(2000, 0)
	b.Failure(now)
	b.Failure(now.Add(30 * time.Second)) // straggler while open
	if ok, probe := b.Allow(now.Add(61 * time.Second)); !ok || !probe {
		t.Fatal("straggling failure extended the cooldown")
	}
	opens, _, _ := b.Counters()
	if opens != 1 {
		t.Fatalf("opens = %d, want 1", opens)
	}
}
