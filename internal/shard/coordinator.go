package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepsea/internal/server"
)

// Config tunes a Coordinator. Addrs are the shard servers' base URLs
// ("http://host:port"); the domain is the partition-key span the
// cluster covers (the workload's item_sk domain).
type Config struct {
	Addrs              []string
	DomainLo, DomainHi int64
	// RequestTimeout bounds each per-shard HTTP call (default 15s).
	RequestTimeout time.Duration
	// Client overrides the HTTP client (tests; default &http.Client{}).
	Client *http.Client
}

// Coordinator fronts a range-sharded deepsea cluster: it owns the
// routing table, scatters queries to the shards owning their selection
// ranges, merges the partial results, and moves range boundaries
// between shards with fenced handoffs when the workload's heat skews.
//
// Locking: mu is the routing-table lock. Queries scatter under RLock;
// a handoff takes the write lock, which both blocks new queries and
// waits out in-flight ones — the coordinator half of the fencing
// protocol (shards independently fence via /admin/range).
type Coordinator struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux

	mu     sync.RWMutex
	shards []ShardInfo // sorted by Lo; tiles [DomainLo, DomainHi]
	epoch  uint64      // last issued handoff epoch

	heatMu sync.Mutex
	heat   *heatMap

	queries    atomic.Uint64
	scattered  atomic.Uint64 // per-shard subqueries issued
	failures   atomic.Uint64
	rebalances atomic.Uint64
}

// New builds a Coordinator over the given shard addresses. Call Init to
// push the initial even range split to the shards before serving.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one shard address")
	}
	if cfg.DomainLo > cfg.DomainHi {
		return nil, fmt.Errorf("shard: empty domain [%d,%d]", cfg.DomainLo, cfg.DomainHi)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 15 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Coordinator{
		cfg:    cfg,
		client: client,
		heat:   newHeatMap(cfg.DomainLo, cfg.DomainHi),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/statz", c.handleStatz)
	mux.HandleFunc("/admin/rebalance", c.handleRebalance)
	c.mux = mux
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Init assigns the boot-time routing table: an even split of the
// domain, pushed to every shard. Must succeed before serving.
func (c *Coordinator) Init() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applyLocked(evenSplit(c.cfg.DomainLo, c.cfg.DomainHi, len(c.cfg.Addrs)))
}

// Shards returns a copy of the current routing table.
func (c *Coordinator) Shards() []ShardInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]ShardInfo(nil), c.shards...)
}

// applyLocked pushes a new set of range boundaries to the shards
// (bounds[i] goes to Addrs/shards[i]) and installs the new routing
// table. Caller holds mu: no queries are in flight, so the shard-side
// drains are instant. Shrinking shards are fenced before growing ones —
// a range is always released by its old owner before its new owner
// starts answering for it, so no two shards ever claim the same keys.
// On a push failure the already-moved shards are rolled back to their
// old ranges (best effort) and the old table stays installed.
func (c *Coordinator) applyLocked(bounds [][2]int64) error {
	if len(bounds) != len(c.cfg.Addrs) {
		return fmt.Errorf("shard: %d bounds for %d shards", len(bounds), len(c.cfg.Addrs))
	}
	next := make([]ShardInfo, len(bounds))
	for i, b := range bounds {
		next[i] = ShardInfo{Addr: c.cfg.Addrs[i], Lo: b[0], Hi: b[1]}
	}
	if err := validate(next, c.cfg.DomainLo, c.cfg.DomainHi); err != nil {
		return err
	}

	// Order: shards whose span shrinks (donors) before those that grow.
	order := make([]int, len(next))
	for i := range order {
		order[i] = i
	}
	width := func(s ShardInfo) int64 { return s.Hi - s.Lo + 1 }
	sort.SliceStable(order, func(a, b int) bool {
		da := int64(1 << 62)
		db := int64(1 << 62)
		if len(c.shards) == len(next) {
			da = width(next[order[a]]) - width(c.shards[order[a]])
			db = width(next[order[b]]) - width(c.shards[order[b]])
		}
		return da < db
	})

	var applied []int
	for _, i := range order {
		c.epoch++
		next[i].Epoch = c.epoch
		if err := c.pushRange(c.cfg.Addrs[i], next[i].Lo, next[i].Hi, c.epoch); err != nil {
			// Roll the moved shards back to their old ranges under fresh
			// epochs so the installed (old) table stays authoritative.
			for _, j := range applied {
				if len(c.shards) == len(next) {
					c.epoch++
					old := c.shards[j]
					if rerr := c.pushRange(old.Addr, old.Lo, old.Hi, c.epoch); rerr == nil {
						c.shards[j].Epoch = c.epoch
					}
				}
			}
			return fmt.Errorf("shard: pushing range [%d,%d] to %s: %w",
				next[i].Lo, next[i].Hi, c.cfg.Addrs[i], err)
		}
		applied = append(applied, i)
	}
	c.shards = next
	return nil
}

// pushRange runs one shard-side fenced handoff via POST /admin/range.
func (c *Coordinator) pushRange(addr string, lo, hi int64, epoch uint64) error {
	body, _ := json.Marshal(map[string]any{"lo": lo, "hi": hi, "epoch": epoch})
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/admin/range", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return nil
}

// Rebalance recomputes equi-heat boundaries from the observed workload
// and, when they differ from the current table, moves them with a
// fenced handoff. Returns whether anything moved.
func (c *Coordinator) Rebalance() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heatMu.Lock()
	bounds := c.heat.boundaries(len(c.shards))
	c.heatMu.Unlock()
	same := len(bounds) == len(c.shards)
	for i := 0; same && i < len(bounds); i++ {
		same = bounds[i][0] == c.shards[i].Lo && bounds[i][1] == c.shards[i].Hi
	}
	if same {
		return false, nil
	}
	if err := c.applyLocked(bounds); err != nil {
		return false, err
	}
	c.rebalances.Add(1)
	return true, nil
}

// wireResponse is a shard's POST /query body as the coordinator reads
// it. Numbers decode as json.Number so group keys and min/max values
// re-marshal byte-for-byte.
type wireResponse struct {
	Columns          []string `json:"columns"`
	Rows             [][]any  `json:"rows"`
	SimulatedSeconds float64  `json:"simulated_seconds"`
	Error            string   `json:"error"`
}

// Response is the coordinator's POST /query body: the merged result
// plus scatter accounting.
type Response struct {
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	// ShardsContacted is how many shards the query's range spanned;
	// SimulatedSeconds is the slowest shard's simulated time (the
	// scatter phase runs them in parallel).
	ShardsContacted  int     `json:"shards_contacted"`
	SimulatedSeconds float64 `json:"simulated_seconds"`
}

// errResponse is the coordinator's error body. FailedLo/FailedHi name
// the range slice whose shard failed, so operators (and the CI smoke
// test) see which part of the domain is down.
type errResponse struct {
	Error    string `json:"error"`
	Shard    string `json:"shard,omitempty"`
	FailedLo *int64 `json:"failed_lo,omitempty"`
	FailedHi *int64 `json:"failed_hi,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	c.queries.Add(1)
	var spec server.QuerySpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	lo, hi, ok := spec.ItemRange()
	if !ok {
		// Without a partition-key predicate the coordinator cannot slice
		// the query: every shard holds the full base tables, so fanning
		// out unclamped would multiply-count every row.
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: "coordinator queries need an item_sk range predicate (or the template form's lo/hi)"})
		return
	}
	if lo > hi || hi < c.cfg.DomainLo || lo > c.cfg.DomainHi {
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: fmt.Sprintf("range [%d,%d] outside domain [%d,%d]",
				lo, hi, c.cfg.DomainLo, c.cfg.DomainHi)})
		return
	}

	c.heatMu.Lock()
	c.heat.record(lo, hi)
	c.heatMu.Unlock()

	// Scatter under the routing read-lock: a concurrent handoff waits
	// for us, so the table we route by stays valid for the whole fan-out.
	c.mu.RLock()
	defer c.mu.RUnlock()
	slices := route(c.shards, lo, hi)
	if len(slices) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: "no shard owns the range (cluster not initialized?)"})
		return
	}

	partial := specAggregates(&spec)
	type shardResult struct {
		idx  int
		resp *wireResponse
		err  error
	}
	results := make([]shardResult, len(slices))
	var wg sync.WaitGroup
	for i, sl := range slices {
		wg.Add(1)
		go func(i int, sl slice) {
			defer wg.Done()
			c.scattered.Add(1)
			resp, err := c.querySlice(r.Context(), &spec, sl, partial)
			results[i] = shardResult{idx: i, resp: resp, err: err}
		}(i, sl)
	}
	wg.Wait()

	var simMax float64
	rowSets := make([][][]any, len(slices))
	var cols []string
	for i, res := range results {
		if res.err != nil {
			c.failures.Add(1)
			sh := c.shards[slices[i].shard]
			flo, fhi := slices[i].lo, slices[i].hi
			writeJSON(w, http.StatusServiceUnavailable, errResponse{
				Error: fmt.Sprintf("shard %s serving range [%d,%d] failed: %v",
					sh.Addr, flo, fhi, res.err),
				Shard:    sh.Addr,
				FailedLo: &flo,
				FailedHi: &fhi,
			})
			return
		}
		rowSets[i] = res.resp.Rows
		if res.resp.SimulatedSeconds > simMax {
			simMax = res.resp.SimulatedSeconds
		}
		if cols == nil && len(res.resp.Columns) > 0 {
			cols = res.resp.Columns
		}
	}

	var outCols []string
	var outRows [][]any
	var err error
	if partial && cols != nil {
		outCols, outRows, err = MergePartials(cols, rowSets)
	} else {
		outCols = cols
		outRows, err = ConcatSorted(rowSets)
	}
	if err != nil {
		c.failures.Add(1)
		writeJSON(w, http.StatusInternalServerError, errResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, Response{
		Columns:          outCols,
		Rows:             outRows,
		ShardsContacted:  len(slices),
		SimulatedSeconds: simMax,
	})
}

// specAggregates reports whether the spec's query ends in an
// aggregation (every workload template does; builder specs declare
// aggs explicitly). Aggregating specs scatter in partial mode.
func specAggregates(spec *server.QuerySpec) bool {
	return spec.Template != "" || len(spec.Aggs) > 0
}

// querySlice sends the spec to one shard, clamped to the slice's range
// and fenced with the shard's routing epoch.
func (c *Coordinator) querySlice(ctx context.Context, spec *server.QuerySpec, sl slice, partial bool) (*wireResponse, error) {
	sub := *spec
	sub.Partial = partial
	sub.Epoch = c.shards[sl.shard].Epoch
	if sub.Template != "" {
		sub.Lo, sub.Hi = sl.lo, sl.hi
	} else {
		// Clamp the first item_sk range predicate (the one ItemRange
		// found, or we would have 400'd already).
		sub.Where = append([]server.WhereSpec(nil), spec.Where...)
		for i := range sub.Where {
			if strings.HasSuffix(sub.Where[i].Col, "item_sk") {
				sub.Where[i].Lo, sub.Where[i].Hi = sl.lo, sl.hi
				break
			}
		}
	}
	body, err := json.Marshal(&sub)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.shards[sl.shard].Addr+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var wire wireResponse
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := wire.Error
		if msg == "" {
			msg = resp.Status
		}
		return nil, fmt.Errorf("%s: %s", resp.Status, msg)
	}
	return &wire, nil
}

// healthzResponse is the coordinator's GET /healthz: the routing table
// with per-shard reachability. Status is "ok" or "degraded" (some shard
// unreachable or unhealthy).
type healthzResponse struct {
	Status string        `json:"status"`
	Shards []shardHealth `json:"shards"`
}

type shardHealth struct {
	ShardInfo
	Reachable bool   `json:"reachable"`
	Health    string `json:"health,omitempty"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := c.Shards()
	out := make([]shardHealth, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh ShardInfo) {
			defer wg.Done()
			out[i] = shardHealth{ShardInfo: sh}
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.Addr+"/healthz", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var hz struct {
				Status string `json:"status"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&hz)
			out[i].Reachable = true
			out[i].Health = hz.Status
		}(i, sh)
	}
	wg.Wait()
	resp := healthzResponse{Status: "ok", Shards: out}
	for _, sh := range out {
		if !sh.Reachable || (sh.Health != "" && sh.Health != "ok") {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statzResponse is the coordinator's GET /statz: scatter counters, the
// routing table, and each shard's share of the observed heat.
type statzResponse struct {
	Queries    uint64       `json:"queries"`
	Scattered  uint64       `json:"scattered"`
	Failures   uint64       `json:"failures"`
	Rebalances uint64       `json:"rebalances"`
	Shards     []shardStatz `json:"shards"`
}

type shardStatz struct {
	ShardInfo
	// HeatShare is the fraction of recorded heat inside the shard's
	// range — the skew signal Rebalance acts on (1/n everywhere when
	// the workload is uniform).
	HeatShare float64 `json:"heat_share"`
}

func (c *Coordinator) handleStatz(w http.ResponseWriter, r *http.Request) {
	shards := c.Shards()
	resp := statzResponse{
		Queries:    c.queries.Load(),
		Scattered:  c.scattered.Load(),
		Failures:   c.failures.Load(),
		Rebalances: c.rebalances.Load(),
	}
	c.heatMu.Lock()
	var total uint64
	perShard := make([]uint64, len(shards))
	for i := 0; i < heatBuckets; i++ {
		lo := c.heat.lo + (c.heat.hi-c.heat.lo+1)*int64(i)/heatBuckets
		for j, sh := range shards {
			if lo >= sh.Lo && lo <= sh.Hi {
				perShard[j] += c.heat.buckets[i]
				break
			}
		}
		total += c.heat.buckets[i]
	}
	c.heatMu.Unlock()
	for i, sh := range shards {
		st := shardStatz{ShardInfo: sh}
		if total > 0 {
			st.HeatShare = float64(perShard[i]) / float64(total)
		}
		resp.Shards = append(resp.Shards, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRebalance is POST /admin/rebalance: recompute equi-heat
// boundaries and move them if they changed.
func (c *Coordinator) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	moved, err := c.Rebalance()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Moved  bool        `json:"moved"`
		Shards []ShardInfo `json:"shards"`
	}{Moved: moved, Shards: c.Shards()})
}
