package shard

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepsea/internal/server"
)

// Config tunes a Coordinator. Either Addrs (one address per range, no
// replication) or Groups (each range served by a replica group —
// Groups[i][0] is the primary, the rest followers) names the cluster;
// the domain is the partition-key span the cluster covers (the
// workload's item_sk domain).
type Config struct {
	// Addrs are single-replica groups: the PR-8 topology. Mutually
	// exclusive with Groups.
	Addrs []string
	// Groups are replica address groups. Base tables are static and
	// fully replicated, so any live replica can answer for its group's
	// range; the exact partial-aggregation mode keeps merged bytes
	// identical regardless of which replica answered.
	Groups             [][]string
	DomainLo, DomainHi int64
	// RequestTimeout bounds each per-replica HTTP attempt (default 15s).
	RequestTimeout time.Duration
	// Client overrides the whole HTTP client (tests; default: a tuned
	// transport — see newTransport).
	Client *http.Client
	// Transport overrides only the transport (chaos tests wrap the real
	// one in a ChaosTransport). Ignored when Client is set.
	Transport http.RoundTripper

	// FailoverRetries bounds how many replicas one range subquery may
	// try before the failure becomes client-visible (default: every
	// replica in the group once; capped at the group size).
	FailoverRetries int
	// FailoverBackoff is the base of the jittered backoff between
	// failover retries (default 5ms, doubling per retry, capped at
	// 100ms, ±50% jitter).
	FailoverBackoff time.Duration

	// BreakerThreshold is how many consecutive failures trip a
	// replica's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses requests
	// before admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration

	// HedgeDelay controls hedged subqueries: after this long without a
	// first response, the same range subquery is fired at a second live
	// replica and the first success wins. 0 (the default) derives the
	// delay from the observed subquery p95; negative disables hedging.
	HedgeDelay time.Duration

	// ProbeInterval, when positive, starts a background health prober
	// that checks every replica, feeds the breakers, and re-pushes
	// range ownership to replicas that missed a handoff. Stop it with
	// Close.
	ProbeInterval time.Duration

	// Seed drives the failover jitter (default 1 — deterministic runs).
	Seed int64

	// KeyIndex maps each base table to the column index of its routing
	// key, for POST /append scatter: a keyed table's batch splits by key
	// range across the owning groups. Tables absent from the map are
	// replicated dimensions — their appends broadcast to every group.
	KeyIndex map[string]int
}

// failoverBackoffCap bounds the exponential failover backoff.
const failoverBackoffCap = 100 * time.Millisecond

// newTransport builds the coordinator's default transport: explicit
// dial and TLS timeouts so a wedged TCP connect cannot stall a subquery
// past RequestTimeout, and an idle-connection pool sized to the cluster
// so scatter fan-outs reuse connections instead of re-dialing.
func newTransport(replicas int) *http.Transport {
	d := &net.Dialer{Timeout: 2 * time.Second, KeepAlive: 30 * time.Second}
	perHost := 16
	return &http.Transport{
		Proxy:                 http.ProxyFromEnvironment,
		DialContext:           d.DialContext,
		TLSHandshakeTimeout:   2 * time.Second,
		ExpectContinueTimeout: time.Second,
		IdleConnTimeout:       90 * time.Second,
		MaxIdleConnsPerHost:   perHost,
		MaxIdleConns:          perHost * maxInt(replicas, 1),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Coordinator fronts a range-sharded deepsea cluster: it owns the
// routing table, scatters queries to the replica groups owning their
// selection ranges, merges the partial results, and moves range
// boundaries between groups with fenced handoffs when the workload's
// heat skews.
//
// Robustness: every range is served by a replica group. A subquery
// prefers the group's healthy primary, fails over (bounded retries,
// jittered backoff) on connection errors, timeouts and 5xx, hedges a
// second replica after a p95-derived delay, and skips replicas whose
// circuit breaker is open — so a dead replica costs one detection, not
// one timeout per query, and replica death mid-burst is invisible to
// clients as long as one replica per group survives.
//
// Locking: mu is the routing-table lock. Queries scatter under RLock; a
// handoff takes the write lock, which both blocks new queries and waits
// out in-flight ones — the coordinator half of the fencing protocol
// (shards independently fence via /admin/range).
type Coordinator struct {
	cfg    Config
	groups [][]string // static replica membership, one group per range
	client *http.Client
	mux    *http.ServeMux

	mu     sync.RWMutex
	shards []ShardInfo // sorted by Lo; tiles [DomainLo, DomainHi]
	epoch  uint64      // last issued handoff epoch

	// replicas maps every replica address to its breaker and probe
	// state; preferred[gi] is the group's current first-choice replica
	// index (primary unless failover moved it).
	replicas  map[string]*replicaState
	preferred []atomic.Int32

	heatMu sync.Mutex
	heat   *heatMap

	lat latencyRing
	rng *lockedRand

	queries    atomic.Uint64
	scattered  atomic.Uint64 // per-range subqueries issued
	attempts   atomic.Uint64 // per-replica attempts (≥ scattered)
	failures   atomic.Uint64 // client-visible failures
	rebalances atomic.Uint64
	failovers  atomic.Uint64 // retries on a different replica
	hedges     atomic.Uint64 // hedge subqueries fired
	hedgeWins  atomic.Uint64 // hedges that beat the first attempt
	refreshes  atomic.Uint64 // 409-driven routing-table refreshes

	appendsRouted atomic.Uint64 // POST /append batches routed
	appendRows    atomic.Uint64 // rows in routed batches
	// appendNonce + appendSeq generate per-batch idempotency tokens for
	// clients that did not supply their own (the nonce is random per
	// coordinator process, so a restarted coordinator cannot collide
	// with tokens a serving tier still remembers).
	appendNonce string
	appendSeq   atomic.Uint64

	proberStop chan struct{}
	proberDone chan struct{}
}

// New builds a Coordinator over the given replica groups (or flat
// addresses). Call Init to push the initial even range split to the
// shards before serving; call Close to stop the background prober when
// ProbeInterval is set.
func New(cfg Config) (*Coordinator, error) {
	groups := cfg.Groups
	if len(groups) == 0 {
		for _, a := range cfg.Addrs {
			groups = append(groups, []string{a})
		}
	} else if len(cfg.Addrs) > 0 {
		return nil, fmt.Errorf("shard: Addrs and Groups are mutually exclusive")
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one shard address")
	}
	if cfg.DomainLo > cfg.DomainHi {
		return nil, fmt.Errorf("shard: empty domain [%d,%d]", cfg.DomainLo, cfg.DomainHi)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 15 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.FailoverBackoff <= 0 {
		cfg.FailoverBackoff = 5 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	replicas := make(map[string]*replicaState)
	var nReplicas int
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("shard: group %d has no replicas", gi)
		}
		for _, a := range g {
			if a == "" {
				return nil, fmt.Errorf("shard: group %d has an empty replica address", gi)
			}
			if _, dup := replicas[a]; dup {
				return nil, fmt.Errorf("shard: replica %s appears twice", a)
			}
			replicas[a] = &replicaState{
				addr: a,
				br:   newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			}
			nReplicas++
		}
	}
	client := cfg.Client
	if client == nil {
		rt := cfg.Transport
		if rt == nil {
			rt = newTransport(nReplicas)
		}
		client = &http.Client{Transport: rt}
	}
	var nonce [8]byte
	_, _ = crand.Read(nonce[:]) // best-effort; an all-zero nonce still dedups within one process
	c := &Coordinator{
		cfg:         cfg,
		groups:      groups,
		client:      client,
		replicas:    replicas,
		preferred:   make([]atomic.Int32, len(groups)),
		heat:        newHeatMap(cfg.DomainLo, cfg.DomainHi),
		rng:         newLockedRand(cfg.Seed),
		appendNonce: hex.EncodeToString(nonce[:]),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/append", c.handleAppend)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/statz", c.handleStatz)
	mux.HandleFunc("/admin/rebalance", c.handleRebalance)
	c.mux = mux
	if cfg.ProbeInterval > 0 {
		c.proberStop = make(chan struct{})
		c.proberDone = make(chan struct{})
		go c.probeLoop(cfg.ProbeInterval)
	}
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the background health prober, if one is running.
func (c *Coordinator) Close() {
	if c.proberStop != nil {
		close(c.proberStop)
		<-c.proberDone
		c.proberStop = nil
	}
}

// Init assigns the boot-time routing table: an even split of the
// domain, pushed to every replica of every group. Must succeed before
// serving. ctx bounds the whole push sequence.
func (c *Coordinator) Init(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applyLocked(ctx, evenSplit(c.cfg.DomainLo, c.cfg.DomainHi, len(c.groups)))
}

// Shards returns a copy of the current routing table.
func (c *Coordinator) Shards() []ShardInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ShardInfo, len(c.shards))
	for i, sh := range c.shards {
		sh.Replicas = append([]string(nil), sh.Replicas...)
		out[i] = sh
	}
	return out
}

// applyLocked pushes a new set of range boundaries to the replica
// groups (bounds[i] goes to groups[i]) and installs the new routing
// table. Caller holds mu: no queries are in flight, so the shard-side
// drains are instant. Shrinking groups are fenced before growing ones —
// a range is always released by its old owner before its new owner
// starts answering for it, so no two groups ever claim the same keys.
// Within a group the push must land on at least one replica; replicas
// that miss it (down at the time) answer with a stale epoch until the
// prober re-pushes, and failover routes around them meanwhile. On a
// whole-group push failure the already-moved groups are rolled back to
// their old ranges (best effort) and the old table stays installed.
func (c *Coordinator) applyLocked(ctx context.Context, bounds [][2]int64) error {
	if len(bounds) != len(c.groups) {
		return fmt.Errorf("shard: %d bounds for %d groups", len(bounds), len(c.groups))
	}
	next := make([]ShardInfo, len(bounds))
	for i, b := range bounds {
		next[i] = ShardInfo{
			Addr:     c.groups[i][0],
			Replicas: append([]string(nil), c.groups[i]...),
			Lo:       b[0],
			Hi:       b[1],
		}
	}
	if err := validate(next, c.cfg.DomainLo, c.cfg.DomainHi); err != nil {
		return err
	}

	// Order: groups whose span shrinks (donors) before those that grow.
	order := make([]int, len(next))
	for i := range order {
		order[i] = i
	}
	width := func(s ShardInfo) int64 { return s.Hi - s.Lo + 1 }
	sort.SliceStable(order, func(a, b int) bool {
		da := int64(1 << 62)
		db := int64(1 << 62)
		if len(c.shards) == len(next) {
			da = width(next[order[a]]) - width(c.shards[order[a]])
			db = width(next[order[b]]) - width(c.shards[order[b]])
		}
		return da < db
	})

	var applied []int
	for _, i := range order {
		c.epoch++
		next[i].Epoch = c.epoch
		if err := c.pushGroup(ctx, i, next[i].Lo, next[i].Hi, c.epoch); err != nil {
			// Roll the moved groups back to their old ranges under fresh
			// epochs so the installed (old) table stays authoritative.
			for _, j := range applied {
				if len(c.shards) == len(next) {
					c.epoch++
					old := c.shards[j]
					if rerr := c.pushGroup(ctx, j, old.Lo, old.Hi, c.epoch); rerr == nil {
						c.shards[j].Epoch = c.epoch
					}
				}
			}
			return fmt.Errorf("shard: pushing range [%d,%d] to group %d (%s): %w",
				next[i].Lo, next[i].Hi, i, c.groups[i][0], err)
		}
		applied = append(applied, i)
	}
	c.shards = next
	return nil
}

// pushGroup runs one group's fenced handoff: the range and epoch are
// pushed to every replica (the primary as "primary", the rest as
// "follower"). At least one replica must accept; replicas that fail are
// left behind on their old epoch, to be healed by the prober.
func (c *Coordinator) pushGroup(ctx context.Context, gi int, lo, hi int64, epoch uint64) error {
	var okCount int
	var errs []string
	for ri, addr := range c.groups[gi] {
		role := server.RoleFollower
		if ri == 0 {
			role = server.RolePrimary
		}
		if err := c.pushRange(ctx, addr, lo, hi, epoch, role); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", addr, err))
			continue
		}
		okCount++
	}
	if okCount == 0 {
		return fmt.Errorf("no replica accepted the handoff: %s", strings.Join(errs, "; "))
	}
	return nil
}

// pushRange runs one replica-side fenced handoff via POST /admin/range.
// The caller's context is threaded through, so a cancelled rebalance or
// coordinator shutdown abandons the push instead of running it against
// a dead cluster for the full timeout.
func (c *Coordinator) pushRange(ctx context.Context, addr string, lo, hi int64, epoch uint64, role string) error {
	body, _ := json.Marshal(map[string]any{"lo": lo, "hi": hi, "epoch": epoch, "role": role})
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/admin/range", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return nil
}

// Rebalance recomputes equi-heat boundaries from the observed workload
// and, when they differ from the current table, moves them with a
// fenced handoff. Returns whether anything moved. ctx bounds the push
// sequence (thread the request or signal context through, so shutdown
// cancels an in-flight rebalance).
func (c *Coordinator) Rebalance(ctx context.Context) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.heatMu.Lock()
	bounds := c.heat.boundaries(len(c.shards))
	c.heatMu.Unlock()
	same := len(bounds) == len(c.shards)
	for i := 0; same && i < len(bounds); i++ {
		same = bounds[i][0] == c.shards[i].Lo && bounds[i][1] == c.shards[i].Hi
	}
	if same {
		return false, nil
	}
	if err := c.applyLocked(ctx, bounds); err != nil {
		return false, err
	}
	c.rebalances.Add(1)
	return true, nil
}

// wireResponse is a shard's POST /query body as the coordinator reads
// it. Numbers decode as json.Number so group keys and min/max values
// re-marshal byte-for-byte.
type wireResponse struct {
	Columns          []string `json:"columns"`
	Rows             [][]any  `json:"rows"`
	SimulatedSeconds float64  `json:"simulated_seconds"`
	Error            string   `json:"error"`
}

// conflict409 carries the true ownership a shard reported in a 409: the
// coordinator adopts it (via a routing refresh) when the shard is ahead
// of the routing table, and routes around the replica when it is
// behind.
type conflict409 struct {
	OwnedLo, OwnedHi int64
	Epoch            uint64
	Msg              string
}

func (e *conflict409) Error() string {
	return fmt.Sprintf("409 conflict: %s (replica owns [%d,%d] at epoch %d)",
		e.Msg, e.OwnedLo, e.OwnedHi, e.Epoch)
}

// Response is the coordinator's POST /query body: the merged result
// plus scatter accounting.
type Response struct {
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	// ShardsContacted is how many range slices the query spanned;
	// SimulatedSeconds is the slowest slice's simulated time (the
	// scatter phase runs them in parallel).
	ShardsContacted  int     `json:"shards_contacted"`
	SimulatedSeconds float64 `json:"simulated_seconds"`
	// Failovers and Hedged report how much routing-around-failure this
	// query needed (0/0 on the happy path).
	Failovers int `json:"failovers,omitempty"`
	Hedged    int `json:"hedged,omitempty"`
}

// errResponse is the coordinator's error body. FailedLo/FailedHi name
// the range slice whose whole replica group failed, so operators (and
// the CI smoke test) see which part of the domain is down.
type errResponse struct {
	Error    string `json:"error"`
	Shard    string `json:"shard,omitempty"`
	FailedLo *int64 `json:"failed_lo,omitempty"`
	FailedHi *int64 `json:"failed_hi,omitempty"`
	// Token is the append batch's idempotency key (client-supplied or
	// coordinator-generated). A failed append may have landed on some
	// replicas; retrying the batch with this exact token lets the
	// serving tier deduplicate the slices that already applied.
	Token string `json:"token,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	c.queries.Add(1)
	var spec server.QuerySpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	lo, hi, ok := spec.ItemRange()
	if !ok {
		// Without a partition-key predicate the coordinator cannot slice
		// the query: every shard holds the full base tables, so fanning
		// out unclamped would multiply-count every row.
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: "coordinator queries need an item_sk range predicate (or the template form's lo/hi)"})
		return
	}
	if lo > hi || hi < c.cfg.DomainLo || lo > c.cfg.DomainHi {
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: fmt.Sprintf("range [%d,%d] outside domain [%d,%d]",
				lo, hi, c.cfg.DomainLo, c.cfg.DomainHi)})
		return
	}

	c.heatMu.Lock()
	c.heat.record(lo, hi)
	c.heatMu.Unlock()

	// Scatter, and when a shard answers 409 with a NEWER epoch than the
	// routing table (the cluster moved on without us — e.g. a coordinator
	// restart raced a handoff), adopt the true ownership by refreshing
	// the table from the shards and retry once. The client never sees
	// the stale-table window. When the refresh fails or the retry draws
	// another stale 409, the 503 body scatterOnce built rides through —
	// the client gets a real error response, never an aborted connection.
	for attempt := 0; ; attempt++ {
		status, body, refresh := c.scatterOnce(r.Context(), &spec, lo, hi)
		if refresh && attempt == 0 {
			if err := c.refreshRouting(r.Context()); err == nil {
				continue
			} else if er, ok := body.(errResponse); ok {
				er.Error += "; routing refresh failed: " + err.Error()
				body = er
			}
		}
		if status != http.StatusOK {
			c.failures.Add(1)
		}
		writeJSON(w, status, body)
		return
	}
}

// scatterOnce routes [lo, hi] through the current table and runs the
// per-slice subqueries in parallel, each with failover and hedging.
// refresh is true when some replica reported a newer epoch than the
// routing table — the caller should refresh and retry, and the
// returned status/body are a ready-to-write 503 naming the conflict in
// case the caller's refresh-retry budget is spent.
func (c *Coordinator) scatterOnce(ctx context.Context, spec *server.QuerySpec, lo, hi int64) (int, any, bool) {
	// Scatter under the routing read-lock: a concurrent handoff waits
	// for us, so the table we route by stays valid for the whole fan-out.
	c.mu.RLock()
	defer c.mu.RUnlock()
	slices := route(c.shards, lo, hi)
	if len(slices) == 0 {
		return http.StatusServiceUnavailable, errResponse{Error: "no shard owns the range (cluster not initialized?)"}, false
	}

	partial := specAggregates(spec)
	type sliceResult struct {
		resp      *wireResponse
		conflict  *conflict409
		err       error
		failovers int
		hedged    int
	}
	results := make([]sliceResult, len(slices))
	var wg sync.WaitGroup
	for i, sl := range slices {
		wg.Add(1)
		go func(i int, sl slice) {
			defer wg.Done()
			c.scattered.Add(1)
			r := &results[i]
			r.resp, r.conflict, r.failovers, r.hedged, r.err =
				c.queryRange(ctx, spec, sl, c.shards[sl.shard], sl.shard, partial)
		}(i, sl)
	}
	wg.Wait()

	var simMax float64
	var totalFailovers, totalHedged int
	rowSets := make([][][]any, len(slices))
	var cols []string
	refresh := false
	var staleAt int // slice whose replica reported the newer epoch
	var staleConflict *conflict409
	for i, res := range results {
		totalFailovers += res.failovers
		totalHedged += res.hedged
		if res.conflict != nil && res.conflict.Epoch > c.shards[slices[i].shard].Epoch {
			refresh = true
			staleAt, staleConflict = i, res.conflict
			continue
		}
		if res.err != nil || res.conflict != nil {
			sh := c.shards[slices[i].shard]
			flo, fhi := slices[i].lo, slices[i].hi
			cause := res.err
			if cause == nil {
				cause = res.conflict
			}
			return http.StatusServiceUnavailable, errResponse{
				Error: fmt.Sprintf("replica group %s serving range [%d,%d] failed: %v",
					sh.Addr, flo, fhi, cause),
				Shard:    sh.Addr,
				FailedLo: &flo,
				FailedHi: &fhi,
			}, false
		}
		rowSets[i] = res.resp.Rows
		if res.resp.SimulatedSeconds > simMax {
			simMax = res.resp.SimulatedSeconds
		}
		if cols == nil && len(res.resp.Columns) > 0 {
			cols = res.resp.Columns
		}
	}
	if refresh {
		sh := c.shards[slices[staleAt].shard]
		flo, fhi := slices[staleAt].lo, slices[staleAt].hi
		return http.StatusServiceUnavailable, errResponse{
			Error: fmt.Sprintf("routing table stale for range [%d,%d]: replica group %s reports epoch %d > table epoch %d (%s)",
				flo, fhi, sh.Addr, staleConflict.Epoch, sh.Epoch, staleConflict.Msg),
			Shard:    sh.Addr,
			FailedLo: &flo,
			FailedHi: &fhi,
		}, true
	}

	var outCols []string
	var outRows [][]any
	var err error
	if partial && cols != nil {
		outCols, outRows, err = MergePartials(cols, rowSets)
	} else {
		outCols = cols
		outRows, err = ConcatSorted(rowSets)
	}
	if err != nil {
		return http.StatusInternalServerError, errResponse{Error: err.Error()}, false
	}
	return http.StatusOK, Response{
		Columns:          outCols,
		Rows:             outRows,
		ShardsContacted:  len(slices),
		SimulatedSeconds: simMax,
		Failovers:        totalFailovers,
		Hedged:           totalHedged,
	}, false
}

// specAggregates reports whether the spec's query ends in an
// aggregation (every workload template does; builder specs declare
// aggs explicitly). Aggregating specs scatter in partial mode.
func specAggregates(spec *server.QuerySpec) bool {
	return spec.Template != "" || len(spec.Aggs) > 0
}

// hedgeDelay resolves the current hedge delay: the configured fixed
// value, or the observed subquery p95 (floored at 1ms). Before enough
// samples accumulate the delay falls back to RequestTimeout/4 — wide
// enough that a cold coordinator does not double its own warmup load.
func (c *Coordinator) hedgeDelay() (time.Duration, bool) {
	if c.cfg.HedgeDelay < 0 {
		return 0, false
	}
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay, true
	}
	p, n := c.lat.p95()
	if n < 8 {
		return c.cfg.RequestTimeout / 4, true
	}
	if p < time.Millisecond {
		p = time.Millisecond
	}
	return p, true
}

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	resp     *wireResponse
	status   int
	conflict *conflict409
	err      error
	addr     string
	hedge    bool
	probe    bool
	took     time.Duration
}

// retryableStatus reports whether an HTTP status should fail over to
// another replica: 5xx (replica broken or overloaded behind a proxy)
// and 429 (replica shedding — a sibling may have capacity).
func retryableStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// queryRange answers one range slice using the owning replica group:
// preferred replica first, bounded failover across the rest on
// connection errors/timeouts/5xx (jittered backoff between retries),
// one hedged attempt after the hedge delay, circuit breakers
// short-circuiting known-dead replicas. Returns the response, or the
// 409 conflict carrying the replicas' claimed ownership, or the last
// error once the retry budget or the replica set is exhausted.
func (c *Coordinator) queryRange(ctx context.Context, spec *server.QuerySpec, sl slice, group ShardInfo, gi int, partial bool) (*wireResponse, *conflict409, int, int, error) {
	sub := *spec
	sub.Partial = partial
	sub.Epoch = group.Epoch
	if sub.Template != "" {
		sub.Lo, sub.Hi = sl.lo, sl.hi
	} else {
		// Clamp the first item_sk range predicate (the one ItemRange
		// found, or we would have 400'd already).
		sub.Where = append([]server.WhereSpec(nil), spec.Where...)
		for i := range sub.Where {
			if strings.HasSuffix(sub.Where[i].Col, "item_sk") {
				sub.Where[i].Lo, sub.Where[i].Hi = sl.lo, sl.hi
				break
			}
		}
	}
	body, err := json.Marshal(&sub)
	if err != nil {
		return nil, nil, 0, 0, err
	}

	// Candidate replicas in preference order: the group's current
	// preferred replica first, then the rest in declared order.
	addrs := append([]string(nil), group.Replicas...)
	if p := int(c.preferred[gi].Load()); p > 0 && p < len(addrs) {
		addrs[0], addrs[p] = addrs[p], addrs[0]
	}
	maxAttempts := c.cfg.FailoverRetries
	if maxAttempts <= 0 || maxAttempts > len(addrs) {
		maxAttempts = len(addrs)
	}

	attemptCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	results := make(chan attemptResult, len(addrs)+1)
	tried := make(map[string]bool, len(addrs))

	// pick returns the next untried replica whose breaker admits a
	// request (marking it tried), or ok=false when none is available.
	pick := func() (addr string, probe, ok bool) {
		now := time.Now()
		for _, a := range addrs {
			if tried[a] {
				continue
			}
			allow, prb := c.replicas[a].br.Allow(now)
			if !allow {
				continue
			}
			tried[a] = true
			return a, prb, true
		}
		return "", false, false
	}

	launch := func(addr string, hedge, probe bool) {
		c.attempts.Add(1)
		go func() {
			start := time.Now()
			resp, status, conflict, err := c.doAttempt(attemptCtx, addr, body)
			results <- attemptResult{
				resp: resp, status: status, conflict: conflict, err: err,
				addr: addr, hedge: hedge, probe: probe, took: time.Since(start),
			}
		}()
	}

	firstAddr, firstProbe, ok := pick()
	if !ok {
		return nil, nil, 0, 0, fmt.Errorf("no live replica for range [%d,%d]: all %d breakers open",
			sl.lo, sl.hi, len(addrs))
	}
	launch(firstAddr, false, firstProbe)
	inflight := 1
	attempts := 1
	failovers, hedged := 0, 0

	// Whatever path returns, results still in flight (hedge losers,
	// attempts outrun by a conflict return or the caller's context) are
	// drained in the background and settled against their breakers —
	// otherwise a half-open probe riding a discarded attempt would pin
	// the breaker's probing flag until the lost-probe cooldown.
	defer func() {
		if inflight > 0 {
			remaining := inflight
			go func() {
				for i := 0; i < remaining; i++ {
					c.settleLate(<-results)
				}
			}()
		}
	}()

	var hedgeC <-chan time.Time
	if delay, hedgeOn := c.hedgeDelay(); hedgeOn && len(addrs) > 1 {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	var lastConflict *conflict409
	for {
		select {
		case <-ctx.Done():
			return nil, nil, failovers, hedged, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if addr, probe, ok := pick(); ok {
				c.hedges.Add(1)
				hedged++
				launch(addr, true, probe)
				inflight++
			}
		case res := <-results:
			inflight--
			switch {
			case res.err == nil && res.status == http.StatusOK:
				c.replicas[res.addr].br.Success()
				c.lat.record(res.took)
				c.notePreferred(gi, group.Replicas, res.addr)
				if res.hedge {
					c.hedgeWins.Add(1)
				}
				cancelAll()
				return res.resp, nil, failovers, hedged, nil
			case res.conflict != nil:
				// Ownership disagreement, not ill health: no breaker
				// penalty — but a half-open probe must still resolve, and
				// a 409 proves the replica alive and serving, so a probe
				// closes the breaker. A replica AHEAD of our table means
				// the table is stale — surface it so the caller refreshes.
				// A replica BEHIND missed a handoff — route around it (the
				// prober will re-push) by falling through to failover.
				if res.probe {
					c.replicas[res.addr].br.Success()
				}
				lastConflict = res.conflict
				lastErr = res.conflict
				if res.conflict.Epoch > group.Epoch {
					cancelAll()
					return nil, res.conflict, failovers, hedged, nil
				}
			case res.err == nil && !retryableStatus(res.status):
				// A non-retryable client error (400, 405...): every replica
				// would refuse it identically, so fail now. The replica
				// answered, so a half-open probe resolves as success.
				if res.probe {
					c.replicas[res.addr].br.Success()
				}
				cancelAll()
				return nil, nil, failovers, hedged,
					fmt.Errorf("%s: HTTP %d", res.addr, res.status)
			default:
				// Connection error, timeout, 5xx or shed: the replica is
				// unhealthy — feed its breaker and fail over.
				c.replicas[res.addr].br.Failure(time.Now())
				if res.err != nil {
					lastErr = fmt.Errorf("%s: %w", res.addr, res.err)
				} else {
					lastErr = fmt.Errorf("%s: HTTP %d", res.addr, res.status)
				}
			}
			if inflight > 0 {
				// A hedge (or the first attempt) is still running and may
				// yet win; wait for it before burning a retry.
				continue
			}
			if attempts >= maxAttempts {
				if lastConflict != nil && lastErr == lastConflict {
					return nil, lastConflict, failovers, hedged, nil
				}
				return nil, nil, failovers, hedged,
					fmt.Errorf("range [%d,%d]: %d replica attempts failed, last: %w",
						sl.lo, sl.hi, attempts, lastErr)
			}
			addr, probe, ok := pick()
			if !ok {
				return nil, nil, failovers, hedged,
					fmt.Errorf("range [%d,%d]: no further live replica, last: %w", sl.lo, sl.hi, lastErr)
			}
			// Jittered backoff before the retry so a burst of failing
			// queries does not re-stampede the next replica in lockstep.
			wait := failoverBackoff(c.rng, c.cfg.FailoverBackoff, failoverBackoffCap, attempts-1)
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, nil, failovers, hedged, ctx.Err()
			}
			c.failovers.Add(1)
			failovers++
			attempts++
			launch(addr, false, probe)
			inflight++
		}
	}
}

// notePreferred records the replica that answered, so subsequent
// queries for the group go straight to a known-healthy replica instead
// of re-discovering the dead primary through its (cheap but nonzero)
// breaker check.
func (c *Coordinator) notePreferred(gi int, replicas []string, addr string) {
	for i, a := range replicas {
		if a == addr {
			c.preferred[gi].Store(int32(i))
			return
		}
	}
}

// settleLate reports a discarded attempt's outcome to its breaker after
// queryRange has already returned. Genuine outcomes feed Success and
// Failure as usual; attempts the coordinator cancelled itself (hedge
// losers, post-return stragglers) prove nothing about the replica, so
// they only release a half-open probe for immediate re-probing.
func (c *Coordinator) settleLate(res attemptResult) {
	rs := c.replicas[res.addr]
	switch {
	case res.err == nil && res.status == http.StatusOK:
		rs.br.Success()
	case res.conflict != nil || (res.err == nil && !retryableStatus(res.status)):
		// The replica answered — alive, just conflicted or refusing.
		if res.probe {
			rs.br.Success()
		}
	case errors.Is(res.err, context.Canceled):
		if res.probe {
			rs.br.Abandon()
		}
	default:
		rs.br.Failure(time.Now())
	}
}

// doAttempt runs one HTTP attempt against one replica. 409 bodies are
// decoded into a conflict409; other bodies into wireResponse.
func (c *Coordinator) doAttempt(ctx context.Context, addr string, body []byte) (*wireResponse, int, *conflict409, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		var re struct {
			Error      string `json:"error"`
			OwnedLo    int64  `json:"owned_lo"`
			OwnedHi    int64  `json:"owned_hi"`
			RangeEpoch uint64 `json:"range_epoch"`
		}
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&re); derr != nil {
			return nil, resp.StatusCode, nil, fmt.Errorf("decoding 409 body: %w", derr)
		}
		return nil, resp.StatusCode, &conflict409{
			OwnedLo: re.OwnedLo, OwnedHi: re.OwnedHi, Epoch: re.RangeEpoch, Msg: re.Error,
		}, nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var wire wireResponse
	if derr := dec.Decode(&wire); derr != nil {
		if resp.StatusCode == http.StatusOK {
			return nil, resp.StatusCode, nil, fmt.Errorf("decoding response: %w", derr)
		}
		wire.Error = resp.Status
	}
	if resp.StatusCode != http.StatusOK {
		if retryableStatus(resp.StatusCode) {
			msg := wire.Error
			if msg == "" {
				msg = resp.Status
			}
			return nil, resp.StatusCode, nil, fmt.Errorf("%s: %s", resp.Status, msg)
		}
		return nil, resp.StatusCode, nil, nil
	}
	return &wire, resp.StatusCode, nil, nil
}

// refreshRouting rebuilds the routing table from the shards' own
// claimed ownership (GET /admin/range on each replica, keeping the
// newest epoch per group) — the recovery path when a 409 proves the
// table stale. The refreshed table must still tile the domain, or it is
// rejected and the old one kept.
func (c *Coordinator) refreshRouting(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshes.Add(1)
	if len(c.shards) == 0 {
		return fmt.Errorf("shard: no routing table to refresh")
	}
	next := make([]ShardInfo, len(c.shards))
	copy(next, c.shards)
	for gi := range next {
		next[gi].Replicas = append([]string(nil), c.shards[gi].Replicas...)
		for _, addr := range c.groups[gi] {
			lo, hi, epoch, err := c.fetchOwnership(ctx, addr)
			if err != nil || epoch == 0 {
				continue
			}
			if epoch > next[gi].Epoch {
				next[gi].Lo, next[gi].Hi, next[gi].Epoch = lo, hi, epoch
			}
		}
		if next[gi].Epoch > c.epoch {
			c.epoch = next[gi].Epoch
		}
	}
	if err := validate(next, c.cfg.DomainLo, c.cfg.DomainHi); err != nil {
		return fmt.Errorf("shard: refreshed table invalid, keeping old: %w", err)
	}
	c.shards = next
	return nil
}

// fetchOwnership asks one replica what range and epoch it serves.
func (c *Coordinator) fetchOwnership(ctx context.Context, addr string) (lo, hi int64, epoch uint64, err error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/admin/range", nil)
	if err != nil {
		return 0, 0, 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	var rr struct {
		Lo    int64  `json:"lo"`
		Hi    int64  `json:"hi"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&rr); err != nil {
		return 0, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("%s", resp.Status)
	}
	return rr.Lo, rr.Hi, rr.Epoch, nil
}

// probeLoop is the background health prober: every interval it checks
// each replica's /healthz, feeding the circuit breakers (so a dead
// replica is discovered before a query pays its timeout, and a revived
// one is readmitted), and re-pushes current ownership to replicas whose
// epoch fell behind (they were down during a handoff).
func (c *Coordinator) probeLoop(interval time.Duration) {
	defer close(c.proberDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.proberStop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll runs one probe sweep over every replica.
func (c *Coordinator) probeAll() {
	type target struct {
		addr  string
		gi    int
		role  string
		lo    int64
		hi    int64
		epoch uint64
	}
	var targets []target
	c.mu.RLock()
	for gi, sh := range c.shards {
		for ri, addr := range c.groups[gi] {
			role := server.RoleFollower
			if ri == 0 {
				role = server.RolePrimary
			}
			targets = append(targets, target{addr: addr, gi: gi, role: role, lo: sh.Lo, hi: sh.Hi, epoch: sh.Epoch})
		}
	}
	c.mu.RUnlock()
	var wg sync.WaitGroup
	for _, tg := range targets {
		wg.Add(1)
		go func(tg target) {
			defer wg.Done()
			c.probeOne(tg.addr, tg.gi, tg.role, tg.lo, tg.hi, tg.epoch)
		}(tg)
	}
	wg.Wait()
}

// probeTimeout bounds one probe request: short, so a sweep over a dead
// replica costs the prober (not queries) a bounded wait.
func (c *Coordinator) probeTimeout() time.Duration {
	if c.cfg.RequestTimeout < 2*time.Second {
		return c.cfg.RequestTimeout
	}
	return 2 * time.Second
}

// probeOne checks one replica: /healthz for liveness (feeding its
// breaker both ways), then /admin/range for epoch lag (re-pushing the
// current ownership when the replica missed a handoff).
func (c *Coordinator) probeOne(addr string, gi int, role string, lo, hi int64, epoch uint64) {
	rs := c.replicas[addr]
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	now := time.Now()
	if err != nil {
		rs.br.Failure(now)
		rs.noteProbe(false, 0, err.Error(), now)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		// Reachable but unhealthy (draining, dependency down): for
		// routing purposes that is a failure — closing the breaker and
		// restoring preference here would flap against the query path
		// re-tripping it on the next request.
		rs.br.Failure(now)
		rs.noteProbe(false, 0, "healthz: "+resp.Status, now)
		return
	}
	rs.br.Success()

	ownLo, ownHi, ownEpoch, err := c.fetchOwnership(ctx, addr)
	if err != nil {
		rs.noteProbe(true, 0, "", now)
		return
	}
	rs.noteProbe(true, ownEpoch, "", now)
	if ownEpoch < epoch || ownLo != lo || ownHi != hi {
		// The replica missed a handoff while it was down: re-push the
		// current ownership so it stops 409ing its share of the traffic.
		if perr := c.pushRange(ctx, addr, lo, hi, epoch, role); perr == nil {
			rs.mu.Lock()
			rs.repushes++
			rs.mu.Unlock()
		}
	}
	// If the group's declared primary is healthy again, prefer it.
	if role == server.RolePrimary && rs.br.State() == breakerClosed {
		c.preferred[gi].Store(0)
	}
}

// healthzResponse is the coordinator's GET /healthz: the routing table
// with per-replica reachability and breaker state. Status is "ok" or
// "degraded" (some replica unreachable, unhealthy, or breaker-open).
type healthzResponse struct {
	Status string        `json:"status"`
	Shards []shardHealth `json:"shards"`
}

type shardHealth struct {
	ShardInfo
	ReplicaHealth []replicaHealth `json:"replica_health"`
}

type replicaHealth struct {
	Addr      string `json:"addr"`
	Role      string `json:"role"`
	Breaker   string `json:"breaker"`
	Reachable bool   `json:"reachable"`
	Health    string `json:"health,omitempty"`
	// ProbeEpoch is the ownership epoch the replica last reported to the
	// prober (0 = never probed); Repushes counts prober-driven handoff
	// repairs after the replica missed one.
	ProbeEpoch uint64 `json:"probe_epoch,omitempty"`
	Repushes   uint64 `json:"repushes,omitempty"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := c.Shards()
	out := make([]shardHealth, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		out[i] = shardHealth{ShardInfo: sh, ReplicaHealth: make([]replicaHealth, len(sh.Replicas))}
		for j, addr := range sh.Replicas {
			wg.Add(1)
			go func(i, j int, addr string, primary bool) {
				defer wg.Done()
				rh := replicaHealth{Addr: addr, Role: server.RoleFollower}
				if primary {
					rh.Role = server.RolePrimary
				}
				if rs := c.replicas[addr]; rs != nil {
					rh.Breaker = rs.br.State().String()
					_, _, rh.ProbeEpoch, _, rh.Repushes = rs.probeSnapshot()
				}
				ctx, cancel := context.WithTimeout(r.Context(), c.probeTimeout())
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
				if err != nil {
					out[i].ReplicaHealth[j] = rh
					return
				}
				resp, err := c.client.Do(req)
				if err != nil {
					out[i].ReplicaHealth[j] = rh
					return
				}
				defer resp.Body.Close()
				var hz struct {
					Status string `json:"status"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&hz)
				rh.Reachable = true
				rh.Health = hz.Status
				out[i].ReplicaHealth[j] = rh
			}(i, j, addr, j == 0)
		}
	}
	wg.Wait()
	resp := healthzResponse{Status: "ok", Shards: out}
	for _, sh := range out {
		for _, rh := range sh.ReplicaHealth {
			if !rh.Reachable || rh.Breaker == breakerOpen.String() ||
				(rh.Health != "" && rh.Health != "ok") {
				resp.Status = "degraded"
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statzResponse is the coordinator's GET /statz: scatter, failover,
// hedging and breaker counters, the routing table, and each group's
// share of the observed heat.
type statzResponse struct {
	Queries    uint64 `json:"queries"`
	Scattered  uint64 `json:"scattered"`
	Attempts   uint64 `json:"attempts"`
	Failures   uint64 `json:"failures"`
	Rebalances uint64 `json:"rebalances"`
	// Failovers counts retries that moved to a different replica;
	// Hedges/HedgeWins count hedged subqueries fired and hedges that
	// beat the first attempt; Refreshes counts 409-driven routing-table
	// rebuilds.
	Failovers uint64 `json:"failovers"`
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	Refreshes uint64 `json:"refreshes"`
	// AppendsRouted/AppendRows count POST /append batches scattered by
	// routing key and the rows they carried.
	AppendsRouted uint64 `json:"appends_routed"`
	AppendRows    uint64 `json:"append_rows"`
	// Breaker aggregates across every replica.
	BreakerOpens         uint64 `json:"breaker_opens"`
	BreakerShortCircuits uint64 `json:"breaker_short_circuits"`
	BreakerProbes        uint64 `json:"breaker_probes"`
	// HedgeDelayMillis is the delay a hedge fired right now would use
	// (0 when hedging is disabled).
	HedgeDelayMillis float64      `json:"hedge_delay_millis"`
	Shards           []shardStatz `json:"shards"`
}

type shardStatz struct {
	ShardInfo
	// HeatShare is the fraction of recorded heat inside the group's
	// range — the skew signal Rebalance acts on (1/n everywhere when
	// the workload is uniform).
	HeatShare float64 `json:"heat_share"`
	// Breakers maps each replica to its current breaker state.
	Breakers map[string]string `json:"breakers,omitempty"`
}

func (c *Coordinator) handleStatz(w http.ResponseWriter, r *http.Request) {
	shards := c.Shards()
	resp := statzResponse{
		Queries:       c.queries.Load(),
		Scattered:     c.scattered.Load(),
		Attempts:      c.attempts.Load(),
		Failures:      c.failures.Load(),
		Rebalances:    c.rebalances.Load(),
		Failovers:     c.failovers.Load(),
		Hedges:        c.hedges.Load(),
		HedgeWins:     c.hedgeWins.Load(),
		Refreshes:     c.refreshes.Load(),
		AppendsRouted: c.appendsRouted.Load(),
		AppendRows:    c.appendRows.Load(),
	}
	for _, rs := range c.replicas {
		opens, shorts, probes := rs.br.Counters()
		resp.BreakerOpens += opens
		resp.BreakerShortCircuits += shorts
		resp.BreakerProbes += probes
	}
	if d, on := c.hedgeDelay(); on {
		resp.HedgeDelayMillis = float64(d) / float64(time.Millisecond)
	}
	c.heatMu.Lock()
	var total uint64
	perShard := make([]uint64, len(shards))
	for i := 0; i < heatBuckets; i++ {
		lo := c.heat.lo + (c.heat.hi-c.heat.lo+1)*int64(i)/heatBuckets
		for j, sh := range shards {
			if lo >= sh.Lo && lo <= sh.Hi {
				perShard[j] += c.heat.buckets[i]
				break
			}
		}
		total += c.heat.buckets[i]
	}
	c.heatMu.Unlock()
	for i, sh := range shards {
		st := shardStatz{ShardInfo: sh, Breakers: make(map[string]string, len(sh.Replicas))}
		if total > 0 {
			st.HeatShare = float64(perShard[i]) / float64(total)
		}
		for _, addr := range sh.Replicas {
			if rs := c.replicas[addr]; rs != nil {
				st.Breakers[addr] = rs.br.State().String()
			}
		}
		resp.Shards = append(resp.Shards, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRebalance is POST /admin/rebalance: recompute equi-heat
// boundaries and move them if they changed.
func (c *Coordinator) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	moved, err := c.Rebalance(r.Context())
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Moved  bool        `json:"moved"`
		Shards []ShardInfo `json:"shards"`
	}{Moved: moved, Shards: c.Shards()})
}
