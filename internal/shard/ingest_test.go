package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepsea"
	"deepsea/internal/ingest"
	"deepsea/internal/server"
	"deepsea/internal/workload"
)

// testKeyIndex is the workload's routing-key map: fact tables split by
// their item_sk column; dimensions (absent) broadcast to every group.
var testKeyIndex = map[string]int{
	"store_sales":     0,
	"web_clickstream": 0,
	"product_reviews": 0,
}

// newKeyedCluster is newCluster plus the ingest routing-key config.
func newKeyedCluster(t *testing.T, k int) (*Coordinator, []*httptest.Server) {
	t.Helper()
	clusterDataOnce.Do(func() { clusterData = workload.Generate(1, 1, nil) })
	var servers []*httptest.Server
	var addrs []string
	for i := 0; i < k; i++ {
		sys := deepsea.New()
		if err := workload.Load(sys, clusterData); err != nil {
			t.Fatal(err)
		}
		srv := server.New(sys, server.Config{MaxInFlight: 8})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		servers = append(servers, ts)
		addrs = append(addrs, ts.URL)
	}
	c, err := New(Config{
		Addrs:          addrs,
		DomainLo:       workload.ItemSkLo,
		DomainHi:       workload.ItemSkHi,
		RequestTimeout: 30 * time.Second,
		KeyIndex:       testKeyIndex,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c, servers
}

// salesBatch builds n valid store_sales rows whose item keys are spread
// over the whole domain (so a k>1 cluster must split the batch) and
// whose foreign keys land on existing dimension rows.
func salesBatch(seed int64, n int) [][]any {
	rng := rand.New(rand.NewSource(9000 + seed))
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []any{
			clusterData.ItemKeys[rng.Intn(len(clusterData.ItemKeys))],
			int64(rng.Intn(200)),
			int64(rng.Intn(20)),
			int64(rng.Intn(20) + 1),
			float64(rng.Intn(50000)) / 100,
			int64(rng.Intn(365)),
			"",
		})
	}
	return rows
}

// coordAppend posts one append spec to the coordinator.
func coordAppend(t *testing.T, c *Coordinator, sp ingest.Spec) (int, AppendResponse, errResponse) {
	t.Helper()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	body, err := json.Marshal(&sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var out AppendResponse
	var eresp errResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decode: %v (body %q)", err, buf.String())
		}
	} else {
		if err := json.Unmarshal(buf.Bytes(), &eresp); err != nil {
			t.Fatalf("decode error body: %v (body %q)", err, buf.String())
		}
	}
	return resp.StatusCode, out, eresp
}

func coordStatz(t *testing.T, c *Coordinator) map[string]any {
	t.Helper()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCoordinatorAppendRoutesAndMatches is the sharded half of the
// ingest identity claim: the same appends routed through 1- and 2-group
// clusters leave every template's full-domain result byte-identical.
// Keyed batches split per owning group; the keyless customer batch
// broadcasts to every group.
func TestCoordinatorAppendRoutesAndMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	specs := []string{
		fmt.Sprintf(`{"template":"Q1","lo":%d,"hi":%d}`, workload.ItemSkLo, workload.ItemSkHi),
		fmt.Sprintf(`{"template":"Q7","lo":%d,"hi":%d}`, workload.ItemSkLo, workload.ItemSkHi),
		fmt.Sprintf(`{"template":"Q9","lo":%d,"hi":%d}`, workload.ItemSkLo, workload.ItemSkHi),
		fmt.Sprintf(`{"template":"Q16","lo":%d,"hi":%d}`, workload.ItemSkLo, workload.ItemSkHi),
	}
	var want []string
	for _, k := range []int{1, 2} {
		c, _ := newKeyedCluster(t, k)

		// Keyed fact append: item keys span the domain, so every group
		// owns a slice.
		sales := salesBatch(42, 150)
		status, out, eresp := coordAppend(t, c, ingest.Spec{Table: "store_sales", Rows: sales})
		if status != http.StatusOK {
			t.Fatalf("k=%d sales append: status %d: %s", k, status, eresp.Error)
		}
		if out.Rows != 150 || out.GroupsContacted != k || out.ReplicasAppended != k {
			t.Fatalf("k=%d sales append routing: %+v (want rows=150 groups=%d replicas=%d)", k, out, k, k)
		}

		// Keyless dimension append: broadcasts whole to every group. The
		// new customers join nothing yet, so results must not change —
		// but a group missing the broadcast would diverge later.
		cust := [][]any{
			{int64(5000), int64(41), 75000.0, ""},
			{int64(5001), int64(29), 52000.0, ""},
		}
		status, out, eresp = coordAppend(t, c, ingest.Spec{Table: "customer", Rows: cust})
		if status != http.StatusOK {
			t.Fatalf("k=%d customer append: status %d: %s", k, status, eresp.Error)
		}
		if out.GroupsContacted != k || out.ReplicasAppended != k {
			t.Fatalf("k=%d customer broadcast: %+v (want groups=%d)", k, out, k)
		}

		for si, spec := range specs {
			resp, qout, qerr := coordQuery(t, c, spec)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("k=%d spec %d: status %d: %s", k, si, resp.StatusCode, qerr.Error)
			}
			fp := fingerprint(t, qout.Columns, qout.Rows)
			if k == 1 {
				want = append(want, fp)
				continue
			}
			if fp != want[si] {
				t.Errorf("k=%d spec %d: post-append result differs from 1-group run", k, si)
			}
		}

		st := coordStatz(t, c)
		if got := st["appends_routed"].(float64); got != 2 {
			t.Fatalf("k=%d statz appends_routed = %v, want 2", k, got)
		}
		if got := st["append_rows"].(float64); got != 152 {
			t.Fatalf("k=%d statz append_rows = %v, want 152", k, got)
		}
	}
}

// TestCoordinatorAppendSplitLandsOnOwnersOnly checks a keyed batch whose
// keys all fall in one group's range contacts exactly that group.
func TestCoordinatorAppendSplitLandsOnOwnersOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	c, _ := newKeyedCluster(t, 3)
	sh := c.Shards()[1]
	rows := [][]any{
		{sh.Lo, int64(1), int64(1), int64(2), 9.75, int64(10), ""},
		{sh.Hi, int64(2), int64(2), int64(3), 4.25, int64(11), ""},
	}
	status, out, eresp := coordAppend(t, c, ingest.Spec{Table: "store_sales", Rows: rows})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, eresp.Error)
	}
	if out.GroupsContacted != 1 || out.ReplicasAppended != 1 {
		t.Fatalf("single-range batch contacted %d groups / %d replicas, want 1/1", out.GroupsContacted, out.ReplicasAppended)
	}
}

// TestCoordinatorAppendBadKeys covers the 400 paths: a routing key
// outside the domain, a non-integer key, and a row too narrow for the
// key index. None of them may land any rows.
func TestCoordinatorAppendBadKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	c, _ := newKeyedCluster(t, 1)
	cases := []ingest.Spec{
		{Table: "store_sales", Rows: [][]any{{workload.ItemSkHi + 1, int64(1), int64(1), int64(1), 1.0, int64(1), ""}}},
		{Table: "store_sales", Rows: [][]any{{"not-a-key", int64(1), int64(1), int64(1), 1.0, int64(1), ""}}},
		{Table: "store_sales", Rows: [][]any{{}}},
	}
	for i, sp := range cases {
		status, _, eresp := coordAppend(t, c, sp)
		if status != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400 (%s)", i, status, eresp.Error)
		}
	}
	st := coordStatz(t, c)
	if got := st["appends_routed"].(float64); got != 0 {
		t.Fatalf("bad appends counted as routed: %v", got)
	}
}

// TestCoordinatorAppendDeadGroupFails kills one group and checks a
// spanning append fails with 502 naming the dead range — writes have no
// routing-around — while a batch owned entirely by a live group still
// lands.
func TestCoordinatorAppendDeadGroupFails(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	c, servers := newKeyedCluster(t, 3)
	dead := c.Shards()[1]
	servers[1].Close()

	status, _, eresp := coordAppend(t, c, ingest.Spec{Table: "store_sales", Rows: salesBatch(77, 60)})
	if status != http.StatusBadGateway {
		t.Fatalf("spanning append with dead group: status %d, want 502", status)
	}
	if eresp.FailedLo == nil || eresp.FailedHi == nil ||
		*eresp.FailedLo != dead.Lo || *eresp.FailedHi != dead.Hi {
		t.Fatalf("502 does not name the dead range [%d,%d]: %+v", dead.Lo, dead.Hi, eresp)
	}

	live := c.Shards()[0]
	rows := [][]any{{live.Lo, int64(1), int64(1), int64(1), 1.0, int64(1), ""}}
	status, out, eresp := coordAppend(t, c, ingest.Spec{Table: "store_sales", Rows: rows})
	if status != http.StatusOK {
		t.Fatalf("live-group append: status %d: %s", status, eresp.Error)
	}
	if out.GroupsContacted != 1 {
		t.Fatalf("live-group append contacted %d groups", out.GroupsContacted)
	}
}

// TestCoordinatorAppendRetryDoesNotDuplicate is the partial-failure
// retry acceptance: in a 2-group cluster where one group's epoch was
// bumped behind the coordinator's back, a spanning append lands its
// slice on the current-epoch group, draws a 409 from the other, and the
// post-refresh retry re-sends both slices — the already-landed group
// must answer from its dedup window, so the cluster holds each row
// exactly once.
func TestCoordinatorAppendRetryDoesNotDuplicate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	c, servers := newKeyedCluster(t, 2)
	sh := c.Shards()[1]

	// Fenced handoff directly against group 1: same range, newer epoch.
	body := fmt.Sprintf(`{"lo":%d,"hi":%d,"epoch":%d}`, sh.Lo, sh.Hi, sh.Epoch+5)
	resp, err := http.Post(servers[1].URL+"/admin/range", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct handoff: status %d", resp.StatusCode)
	}

	const n = 60
	status, out, eresp := coordAppend(t, c, ingest.Spec{Table: "store_sales", Rows: salesBatch(21, n), Token: "batch-21"})
	if status != http.StatusOK {
		t.Fatalf("spanning append after epoch bump: status %d: %s", status, eresp.Error)
	}
	if out.Rows != n || out.GroupsContacted != 2 || out.ReplicasAppended != 2 {
		t.Fatalf("append routing after retry: %+v", out)
	}
	if out.Token != "batch-21" {
		t.Fatalf("response token = %q, want the client's batch-21", out.Token)
	}
	if c.refreshes.Load() == 0 {
		t.Fatal("no routing refresh recorded: the retry path never ran")
	}

	// Every row exactly once: the per-server ingest counters sum to the
	// batch size (a duplicated slice on group 0 would overshoot), and the
	// group that saw both attempts answered the second from its dedup
	// window.
	var total uint64
	var dedups uint64
	for _, ts := range servers {
		var hz struct {
			IngestRows uint64 `json:"ingest_rows"`
		}
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		total += hz.IngestRows
		var sz struct {
			Serving struct {
				AppendDedups uint64 `json:"append_dedups"`
			} `json:"serving"`
		}
		r, err = http.Get(ts.URL + "/statz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&sz); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		dedups += sz.Serving.AppendDedups
	}
	if total != n {
		t.Fatalf("cluster holds %d appended rows, want exactly %d (retry duplicated a slice)", total, n)
	}
	if dedups != 1 {
		t.Fatalf("append_dedups across servers = %d, want 1 (the re-sent landed slice)", dedups)
	}
}

// TestCoordinatorAppendStaleEpochRefreshes advances a shard's epoch
// behind the coordinator's back; the first append attempt draws a 409,
// the coordinator refreshes its routing table from the shard's claimed
// ownership, and the retry lands.
func TestCoordinatorAppendStaleEpochRefreshes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system cluster test")
	}
	c, servers := newKeyedCluster(t, 1)
	sh := c.Shards()[0]

	// Fenced handoff directly against the shard: same range, newer epoch.
	body := fmt.Sprintf(`{"lo":%d,"hi":%d,"epoch":%d}`, sh.Lo, sh.Hi, sh.Epoch+5)
	resp, err := http.Post(servers[0].URL+"/admin/range", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct handoff: status %d", resp.StatusCode)
	}

	status, out, eresp := coordAppend(t, c, ingest.Spec{Table: "store_sales", Rows: salesBatch(5, 20)})
	if status != http.StatusOK {
		t.Fatalf("append after shard-side epoch bump: status %d: %s", status, eresp.Error)
	}
	if out.Rows != 20 {
		t.Fatalf("append response: %+v", out)
	}
	if got := c.Shards()[0].Epoch; got != sh.Epoch+5 {
		t.Fatalf("routing table epoch = %d, want %d (refresh did not adopt)", got, sh.Epoch+5)
	}
	if c.refreshes.Load() == 0 {
		t.Fatal("no routing refresh recorded")
	}
}
