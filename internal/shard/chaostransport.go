package shard

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosTransport is a deterministic fault-injecting http.RoundTripper —
// the network-layer sibling of internal/faults. Wrapped around the
// coordinator's real transport it simulates the failure modes a
// scatter-gather tier must survive: dropped connections, injected
// straggler latency, and spurious 5xx responses.
//
// Determinism: whether the n-th request to a given host is disturbed —
// and how — is a pure function of (Seed, host, n). The schedule for any
// one host therefore reproduces across runs regardless of goroutine
// interleaving; only the assignment of concurrent requests to positions
// in a host's sequence can vary, exactly as with internal/faults
// anonymous keys.
//
// Hosts, when non-nil, restricts injection to the named hosts
// ("host:port" as in URL.Host); requests to other hosts pass through
// untouched. Probabilities are independent per request in the order
// drop, 5xx, latency: an injected latency delays the request and then
// lets it proceed (a straggler, not a failure).
type ChaosTransport struct {
	// Base performs real round trips (default http.DefaultTransport).
	Base http.RoundTripper
	// Seed drives every injection decision.
	Seed int64
	// DropProb returns a synthetic connection error without touching the
	// network — a died-mid-dial peer.
	DropProb float64
	// Err5xxProb returns a synthetic 503 body without touching the
	// network — an overloaded or misrouted peer.
	Err5xxProb float64
	// LatencyProb delays the request by Latency before sending it — a
	// straggling peer. The delay honors request-context cancellation, so
	// a hedged winner cancels a delayed loser promptly.
	LatencyProb float64
	Latency     time.Duration
	// Hosts, when non-nil, limits injection to these URL hosts.
	Hosts map[string]bool

	// disarmed suspends all injection (SetArmed(false)); the zero value
	// is armed. Tests disarm during cluster setup so handoff pushes stay
	// clean, then arm for the measured phase.
	disarmed atomic.Bool

	mu    sync.Mutex
	seq   map[string]uint64 // per-host request counter
	drops atomic.Uint64
	fives atomic.Uint64
	slows atomic.Uint64
}

// SetArmed enables or disables injection. A disarmed transport passes
// everything through (and does not advance per-host sequences, so the
// armed schedule stays deterministic regardless of setup traffic).
func (t *ChaosTransport) SetArmed(armed bool) { t.disarmed.Store(!armed) }

// chaosErr is the synthetic connection error, distinguishable in logs
// from a real one.
type chaosErr struct {
	host string
	n    uint64
}

func (e *chaosErr) Error() string {
	return fmt.Sprintf("chaos: injected connection drop to %s (request %d)", e.host, e.n)
}

// Timeout and Temporary make the injected error look like a transient
// net error to any classifier that asks.
func (e *chaosErr) Timeout() bool   { return true }
func (e *chaosErr) Temporary() bool { return true }

// roll returns a uniform [0,1) draw that is a pure function of
// (seed, host, n, site). site separates the drop/5xx/latency decisions
// so they are independent.
func chaosRoll(seed int64, host string, n uint64, site uint64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", seed, host, n, site)
	x := h.Sum64()
	// splitmix64 finalizer for good low-bit avalanche.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// next returns this request's position in its host's sequence.
func (t *ChaosTransport) next(host string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq == nil {
		t.seq = make(map[string]uint64)
	}
	t.seq[host]++
	return t.seq[host]
}

// Counters reports how many faults were injected (drops, 5xx, delays).
func (t *ChaosTransport) Counters() (drops, fives, slows uint64) {
	return t.drops.Load(), t.fives.Load(), t.slows.Load()
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.disarmed.Load() {
		return base.RoundTrip(req)
	}
	host := req.URL.Host
	if t.Hosts != nil && !t.Hosts[host] {
		return base.RoundTrip(req)
	}
	n := t.next(host)
	if t.DropProb > 0 && chaosRoll(t.Seed, host, n, 1) < t.DropProb {
		t.drops.Add(1)
		// The request body (if any) must be closed on error, per the
		// RoundTripper contract.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &url.Error{Op: req.Method, URL: req.URL.String(), Err: &chaosErr{host: host, n: n}}
	}
	if t.Err5xxProb > 0 && chaosRoll(t.Seed, host, n, 2) < t.Err5xxProb {
		t.fives.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		body := fmt.Sprintf(`{"error":"chaos: injected 503 from %s (request %d)"}`, host, n)
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if t.LatencyProb > 0 && t.Latency > 0 && chaosRoll(t.Seed, host, n, 3) < t.LatencyProb {
		t.slows.Add(1)
		timer := time.NewTimer(t.Latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, &url.Error{Op: req.Method, URL: req.URL.String(), Err: req.Context().Err()}
		}
	}
	return base.RoundTrip(req)
}
