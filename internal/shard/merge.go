// Package shard scales DeepSea out: a scatter-gather coordinator
// range-partitions the item_sk domain across N deepsea serving
// instances, routes each query to the shards owning its selection
// range, runs it there in partial-aggregate mode, and merges the
// per-shard states into the final result.
//
// The merge is deterministic by construction — byte-identical for any
// shard count and any placement of rows:
//
//   - Partial sums travel as exact lossless encodings (see
//     engine.MergePartialSums), so merging them is associative: no
//     float rounding happens until the single final conversion.
//   - Merged rows are sorted by a canonical encoding of their group
//     key, erasing per-shard arrival and first-seen order.
//   - The one-shard cluster takes the same path, so it is the byte
//     reference the multi-shard runs are compared against.
package shard

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"deepsea/internal/engine"
	"deepsea/internal/query"
)

// mergeKind is what a result column contributes to the merge.
type mergeKind int

const (
	mkGroup  mergeKind = iota // group-by key: part of the row identity
	mkCount                   // int64 sum of per-shard counts
	mkSum                     // exact merge of encoded partial sums
	mkAvgSum                  // exact sum half of an average
	mkAvgN                    // count half of an average (consumed by mkAvgSum)
	mkMin                     // minimum across shards
	mkMax                     // maximum across shards
)

// colPlan is the merge recipe for one input column.
type colPlan struct {
	kind mergeKind
	name string // output column name (partial suffix stripped)
}

// planColumns classifies a partial result header. The avg state spans
// two adjacent input columns (sum then n, as query.PartialCols emits
// them); the n column folds into its sum column's output.
func planColumns(cols []string) ([]colPlan, error) {
	plans := make([]colPlan, len(cols))
	for i, c := range cols {
		base, kind, ok := query.SplitPartialCol(c)
		if !ok {
			plans[i] = colPlan{kind: mkGroup, name: c}
			continue
		}
		switch kind {
		case query.PartialCount:
			plans[i] = colPlan{kind: mkCount, name: base}
		case query.PartialSum:
			plans[i] = colPlan{kind: mkSum, name: base}
		case query.PartialAvgSum:
			if i+1 >= len(cols) || cols[i+1] != base+"#"+query.PartialAvgN {
				return nil, fmt.Errorf("shard: avg state %q missing its count column", c)
			}
			plans[i] = colPlan{kind: mkAvgSum, name: base}
		case query.PartialAvgN:
			plans[i] = colPlan{kind: mkAvgN, name: base}
		case query.PartialMin:
			plans[i] = colPlan{kind: mkMin, name: base}
		case query.PartialMax:
			plans[i] = colPlan{kind: mkMax, name: base}
		default:
			return nil, fmt.Errorf("shard: unknown partial state kind %q in column %q", kind, c)
		}
	}
	return plans, nil
}

// OutputColumns returns the merged header for a partial header: group
// columns as-is, one column per aggregate (the avg n column collapses
// into its sum).
func OutputColumns(cols []string) ([]string, error) {
	plans, err := planColumns(cols)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(plans))
	for _, p := range plans {
		if p.kind == mkAvgN {
			continue
		}
		out = append(out, p.name)
	}
	return out, nil
}

// groupAcc is the merged state of one output group.
type groupAcc struct {
	groupVals []any      // decoded group-key values, in column order
	counts    []int64    // per mkCount column
	sums      [][]string // per mkSum/mkAvgSum column: encodings to merge
	avgNs     []int64    // per mkAvgN column
	mins      []any      // per mkMin column
	maxs      []any      // per mkMax column
}

// MergePartials merges per-shard partial-aggregate results (all sharing
// the header cols) into final rows, sorted canonically by group key.
// Row values must be as decoded by decodeWire: json.Number for numbers,
// string for strings — the coordinator re-marshals them untouched, so
// group keys and min/max winners round-trip byte-for-byte.
func MergePartials(cols []string, shardRows [][][]any) (outCols []string, outRows [][]any, err error) {
	plans, err := planColumns(cols)
	if err != nil {
		return nil, nil, err
	}
	outCols, _ = OutputColumns(cols)

	groups := make(map[string]*groupAcc)
	for _, rows := range shardRows {
		for _, row := range rows {
			if len(row) != len(plans) {
				return nil, nil, fmt.Errorf("shard: row has %d values, header has %d", len(row), len(plans))
			}
			key, err := groupKey(plans, row)
			if err != nil {
				return nil, nil, err
			}
			g := groups[key]
			if g == nil {
				g = newGroupAcc(plans, row)
				groups[key] = g
			}
			if err := g.fold(plans, row); err != nil {
				return nil, nil, err
			}
		}
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	outRows = make([][]any, 0, len(keys))
	for _, k := range keys {
		row, err := groups[k].finish(plans)
		if err != nil {
			return nil, nil, err
		}
		outRows = append(outRows, row)
	}
	return outCols, outRows, nil
}

// groupKey builds the canonical row identity: each group value length-
// prefixed so no concatenation of values collides with another.
func groupKey(plans []colPlan, row []any) (string, error) {
	var b strings.Builder
	for i, p := range plans {
		if p.kind != mkGroup {
			continue
		}
		s, err := scalarText(row[i])
		if err != nil {
			return "", fmt.Errorf("shard: group column %q: %w", p.name, err)
		}
		fmt.Fprintf(&b, "%d:%s;", len(s), s)
	}
	return b.String(), nil
}

func newGroupAcc(plans []colPlan, row []any) *groupAcc {
	g := &groupAcc{}
	for i, p := range plans {
		if p.kind == mkGroup {
			g.groupVals = append(g.groupVals, row[i])
		}
	}
	for _, p := range plans {
		switch p.kind {
		case mkCount:
			g.counts = append(g.counts, 0)
		case mkSum, mkAvgSum:
			g.sums = append(g.sums, nil)
		case mkAvgN:
			g.avgNs = append(g.avgNs, 0)
		case mkMin:
			g.mins = append(g.mins, nil)
		case mkMax:
			g.maxs = append(g.maxs, nil)
		}
	}
	return g
}

// fold accumulates one partial row into the group.
func (g *groupAcc) fold(plans []colPlan, row []any) error {
	var ci, si, ni, mi, xi int
	for i, p := range plans {
		switch p.kind {
		case mkCount:
			n, err := asInt64(row[i])
			if err != nil {
				return fmt.Errorf("shard: count column %q: %w", p.name, err)
			}
			g.counts[ci] += n
			ci++
		case mkSum, mkAvgSum:
			s, ok := row[i].(string)
			if !ok {
				return fmt.Errorf("shard: sum column %q: want encoded string, got %T", p.name, row[i])
			}
			g.sums[si] = append(g.sums[si], s)
			si++
		case mkAvgN:
			n, err := asInt64(row[i])
			if err != nil {
				return fmt.Errorf("shard: avg count column %q: %w", p.name, err)
			}
			g.avgNs[ni] += n
			ni++
		case mkMin:
			v, err := pickExtreme(g.mins[mi], row[i], true)
			if err != nil {
				return fmt.Errorf("shard: min column %q: %w", p.name, err)
			}
			g.mins[mi] = v
			mi++
		case mkMax:
			v, err := pickExtreme(g.maxs[xi], row[i], false)
			if err != nil {
				return fmt.Errorf("shard: max column %q: %w", p.name, err)
			}
			g.maxs[xi] = v
			xi++
		}
	}
	return nil
}

// finish renders the merged output row. Sums and averages round exactly
// once, here — the merge determinism rule.
func (g *groupAcc) finish(plans []colPlan) ([]any, error) {
	row := make([]any, 0, len(plans))
	var gi, ci, si, ni, mi, xi int
	for _, p := range plans {
		switch p.kind {
		case mkGroup:
			row = append(row, g.groupVals[gi])
			gi++
		case mkCount:
			row = append(row, g.counts[ci])
			ci++
		case mkSum:
			_, v, err := engine.MergePartialSums(g.sums[si]...)
			if err != nil {
				return nil, fmt.Errorf("shard: merging %q: %w", p.name, err)
			}
			row = append(row, v)
			si++
		case mkAvgSum:
			_, v, err := engine.MergePartialSums(g.sums[si]...)
			if err != nil {
				return nil, fmt.Errorf("shard: merging %q: %w", p.name, err)
			}
			si++
			// The adjacent mkAvgN plan holds this average's denominator.
			n := g.avgNs[ni]
			ni++
			if n == 0 {
				row = append(row, 0.0)
			} else {
				row = append(row, v/float64(n))
			}
		case mkAvgN:
			// consumed by mkAvgSum
		case mkMin:
			row = append(row, g.mins[mi])
			mi++
		case mkMax:
			row = append(row, g.maxs[xi])
			xi++
		}
	}
	return row, nil
}

// ConcatSorted merges non-aggregate results: shards own disjoint ranges
// so the row sets are disjoint, and a canonical whole-row sort erases
// shard order. The same sort applies at every shard count.
func ConcatSorted(shardRows [][][]any) ([][]any, error) {
	var out [][]any
	keys := make([]string, 0)
	for _, rows := range shardRows {
		for _, row := range rows {
			var b strings.Builder
			for _, v := range row {
				s, err := scalarText(v)
				if err != nil {
					return nil, err
				}
				fmt.Fprintf(&b, "%d:%s;", len(s), s)
			}
			out = append(out, row)
			keys = append(keys, b.String())
		}
	}
	sort.Sort(&rowSorter{keys: keys, rows: out})
	return out, nil
}

type rowSorter struct {
	keys []string
	rows [][]any
}

func (s *rowSorter) Len() int           { return len(s.keys) }
func (s *rowSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *rowSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}

// scalarText renders a decoded wire value for key building. Numbers
// keep their exact wire text (decodeWire preserves json.Number), so two
// shards rendering the same value always agree. A type tag prevents the
// number 1 and the string "1" from colliding.
func scalarText(v any) (string, error) {
	switch t := v.(type) {
	case json.Number:
		return "n" + t.String(), nil
	case string:
		return "s" + t, nil
	case int64:
		return fmt.Sprintf("n%d", t), nil
	case float64:
		b, _ := json.Marshal(t)
		return "n" + string(b), nil
	case bool:
		return fmt.Sprintf("b%v", t), nil
	case nil:
		return "z", nil
	default:
		return "", fmt.Errorf("unsupported value type %T", v)
	}
}

// asInt64 parses a wire number as an exact integer.
func asInt64(v any) (int64, error) {
	switch t := v.(type) {
	case json.Number:
		return t.Int64()
	case int64:
		return t, nil
	case float64:
		n := int64(t)
		if float64(n) != t {
			return 0, fmt.Errorf("non-integer count %v", t)
		}
		return n, nil
	default:
		return 0, fmt.Errorf("want number, got %T", v)
	}
}

// pickExtreme keeps the smaller (min=true) or larger of cur and next.
// Numbers compare numerically, strings lexically — matching the
// engine's own min/max semantics per column type.
func pickExtreme(cur, next any, min bool) (any, error) {
	if cur == nil {
		return next, nil
	}
	less, err := scalarLess(next, cur)
	if err != nil {
		return nil, err
	}
	if min == less {
		return next, nil
	}
	return cur, nil
}

func scalarLess(a, b any) (bool, error) {
	na, aNum := toFloat(a)
	nb, bNum := toFloat(b)
	if aNum && bNum {
		return na < nb, nil
	}
	sa, aStr := a.(string)
	sb, bStr := b.(string)
	if aStr && bStr {
		return sa < sb, nil
	}
	return false, fmt.Errorf("cannot compare %T with %T", a, b)
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case json.Number:
		f, err := t.Float64()
		return f, err == nil
	case int64:
		return float64(t), true
	case float64:
		return t, true
	default:
		return 0, false
	}
}
