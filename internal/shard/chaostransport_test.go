package shard

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestChaosRollDeterminism pins the determinism contract: the fault
// decision for the n-th request to a host is a pure function of
// (seed, host, n, site), rolls are uniform enough to honor configured
// probabilities, and the per-site streams are independent.
func TestChaosRollDeterminism(t *testing.T) {
	for n := uint64(1); n <= 64; n++ {
		for site := uint64(1); site <= 3; site++ {
			a := chaosRoll(7, "h1:80", n, site)
			b := chaosRoll(7, "h1:80", n, site)
			if a != b {
				t.Fatalf("chaosRoll not deterministic at n=%d site=%d: %v vs %v", n, site, a, b)
			}
			if a < 0 || a >= 1 {
				t.Fatalf("chaosRoll out of [0,1): %v", a)
			}
		}
	}
	// Different seeds, hosts and sites must decorrelate the streams.
	var diffSeed, diffHost, diffSite int
	for n := uint64(1); n <= 256; n++ {
		base := chaosRoll(7, "h1:80", n, 1)
		if (base < 0.5) != (chaosRoll(8, "h1:80", n, 1) < 0.5) {
			diffSeed++
		}
		if (base < 0.5) != (chaosRoll(7, "h2:80", n, 1) < 0.5) {
			diffHost++
		}
		if (base < 0.5) != (chaosRoll(7, "h1:80", n, 2) < 0.5) {
			diffSite++
		}
	}
	for name, n := range map[string]int{"seed": diffSeed, "host": diffHost, "site": diffSite} {
		if n < 64 || n > 192 {
			t.Errorf("streams differing by %s disagree on %d/256 draws; want roughly half", name, n)
		}
	}
	// An honest roll rate: at DropProb 0.25, 256 draws should land near
	// 64 hits (loose 3-sigma-ish band).
	hits := 0
	for n := uint64(1); n <= 256; n++ {
		if chaosRoll(99, "h3:80", n, 1) < 0.25 {
			hits++
		}
	}
	if hits < 40 || hits > 90 {
		t.Errorf("0.25-probability stream hit %d/256 draws", hits)
	}
}

// TestChaosTransportInjectsFaults exercises all three fault kinds
// against a live backend and checks the schedule reproduces run to run.
func TestChaosTransportInjectsFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	run := func() (statuses []int, drops, fives, slows uint64) {
		ct := &ChaosTransport{Seed: 42, DropProb: 0.3, Err5xxProb: 0.3}
		client := &http.Client{Transport: ct}
		for i := 0; i < 40; i++ {
			resp, err := client.Get(ts.URL)
			if err != nil {
				var ce *chaosErr
				if !errors.As(err, &ce) {
					t.Fatalf("request %d: non-chaos error %v", i, err)
				}
				var nerr net.Error
				if !errors.As(err, &nerr) || !nerr.Timeout() {
					t.Fatalf("chaos drop does not present as a net timeout: %v", err)
				}
				statuses = append(statuses, -1)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses = append(statuses, resp.StatusCode)
		}
		drops, fives, slows = ct.Counters()
		return
	}

	s1, d1, f1, _ := run()
	s2, d2, f2, _ := run()
	if d1 == 0 || f1 == 0 {
		t.Fatalf("no faults injected in 40 requests (drops %d, 5xx %d)", d1, f1)
	}
	if d1 != d2 || f1 != f2 {
		t.Fatalf("fault counts not reproducible: (%d,%d) vs (%d,%d)", d1, f1, d2, f2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("request %d outcome differs across runs: %d vs %d", i, s1[i], s2[i])
		}
	}

	// Hosts scoping: a transport aimed at another host passes through.
	ct := &ChaosTransport{Seed: 42, DropProb: 1, Hosts: map[string]bool{"elsewhere:1": true}}
	client := &http.Client{Transport: ct}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("scoped transport disturbed an excluded host: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d, _, _ := ct.Counters(); d != 0 {
		t.Fatalf("scoped transport counted %d drops on an excluded host", d)
	}
}

// TestChaosLatencyHonorsCancellation verifies an injected delay unwinds
// promptly when the request context is cancelled — the property hedging
// relies on to reap losers.
func TestChaosLatencyHonorsCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	ct := &ChaosTransport{Seed: 1, LatencyProb: 1, Latency: time.Minute}
	client := &http.Client{Transport: ct}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	done := make(chan error, 1)
	go func() {
		_, err := client.Do(req)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled delayed request returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled delayed request did not unwind")
	}
}
