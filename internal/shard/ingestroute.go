package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"deepsea/internal/ingest"
)

// AppendResponse is the coordinator's POST /append body: how the batch
// was routed. Rows landed exactly once per owning group — every replica
// of a group receives its slice, so any replica can keep answering the
// group's range.
type AppendResponse struct {
	Table string `json:"table"`
	Rows  int    `json:"rows"`
	// GroupsContacted is how many range groups received a slice of the
	// batch; ReplicasAppended the total replica-level appends landed
	// (dedup-confirmed replicas — slices a replica already applied under
	// the same token — count as landed; they hold the rows).
	GroupsContacted  int `json:"groups_contacted"`
	ReplicasAppended int `json:"replicas_appended"`
	// Deferred is true when some replica handed its view refreshes to
	// background maintenance instead of applying them inline.
	Deferred bool `json:"deferred,omitempty"`
	// Token is the batch's idempotency key: the client's Spec.Token, or
	// a coordinator-generated one. Retrying the batch with this token
	// cannot duplicate rows on replicas that already applied it.
	Token string `json:"token,omitempty"`
}

// handleAppend is the coordinator's POST /append: split the batch by
// routing key across the range groups that own each row, and forward
// each slice to every replica of its owning group (replicas hold
// independent copies, and any of them may answer the group's range).
// Tables without a configured routing key are replicated dimensions:
// the whole batch broadcasts to every group. A 409 from a shard that is
// ahead of the routing table triggers one routing refresh and retry,
// mirroring the query path.
//
// Retries never duplicate rows: every replica-level send carries an
// idempotency token derived from the batch token and the slice's range,
// so replicas that applied a slice in an earlier attempt answer the
// retry from their dedup window instead of appending again. If the
// refreshed routing table re-ranges groups that already landed rows —
// the one case where the retry would re-slice landed rows differently —
// the coordinator refuses to retry and reports the token so the caller
// can retry safely once routing stabilizes.
func (c *Coordinator) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	sp, err := ingest.DecodeSpec(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}
	token := sp.Token
	if token == "" {
		token = fmt.Sprintf("%s-%d", c.appendNonce, c.appendSeq.Add(1))
	}
	landed := make(map[string]bool)
	for attempt := 0; ; attempt++ {
		status, body, refresh := c.appendOnce(r.Context(), sp, token, landed)
		if refresh && attempt == 0 {
			if rerr := c.refreshRouting(r.Context()); rerr == nil {
				continue
			} else if er, ok := body.(errResponse); ok {
				er.Error += "; routing refresh failed: " + rerr.Error()
				body = er
			}
		}
		if status == http.StatusOK {
			c.appendsRouted.Add(1)
			c.appendRows.Add(uint64(len(sp.Rows)))
		} else {
			c.failures.Add(1)
		}
		writeJSON(w, status, body)
		return
	}
}

// appendRangeKey identifies a group's range for landed-slice tracking
// and per-slice idempotency tokens.
func appendRangeKey(lo, hi int64) string { return fmt.Sprintf("%d:%d", lo, hi) }

// appendOnce routes one append batch through the current table. refresh
// is true when a shard reported a newer epoch than the routing table —
// the caller should refresh and retry once. landed accumulates, across
// attempts, the range keys of groups where at least one replica
// accepted its slice; a retry consults it to decide whether re-sending
// is provably safe.
func (c *Coordinator) appendOnce(ctx context.Context, sp *ingest.Spec, token string, landed map[string]bool) (int, any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.shards) == 0 {
		return http.StatusServiceUnavailable,
			errResponse{Error: "no routing table (cluster not initialized?)", Token: token}, false
	}

	// Retry-safety guard: rows from an earlier attempt already landed on
	// the groups in `landed`, keyed by range. Re-sending is safe only
	// because identical ranges re-slice the batch identically, so the
	// per-slice tokens match and the landed replicas deduplicate. If the
	// refreshed table moved any of those range boundaries, the retry
	// would scatter already-landed rows under different slices/tokens —
	// refuse rather than duplicate.
	if len(landed) > 0 {
		current := make(map[string]bool, len(c.shards))
		for _, sh := range c.shards {
			current[appendRangeKey(sh.Lo, sh.Hi)] = true
		}
		for rk := range landed {
			if !current[rk] {
				return http.StatusBadGateway, errResponse{
					Error: fmt.Sprintf("routing ranges changed under a partially applied append "+
						"(rows landed for range %s, which no longer exists): not retrying to avoid "+
						"duplication; retry the batch with the same token once routing stabilizes", rk),
					Token: token,
				}, false
			}
		}
	}

	// Slice the batch: keyed tables split by owning range (row order
	// within each slice preserved); keyless tables broadcast whole.
	slices := make([][][]any, len(c.shards))
	ki, keyed := c.cfg.KeyIndex[sp.Table]
	if keyed {
		for _, row := range sp.Rows {
			if ki < 0 || ki >= len(row) {
				return http.StatusBadRequest, errResponse{
					Error: fmt.Sprintf("table %s routing key index %d out of row width %d",
						sp.Table, ki, len(row))}, false
			}
			k, ok := row[ki].(int64)
			if !ok {
				return http.StatusBadRequest, errResponse{
					Error: fmt.Sprintf("table %s routing key must be an integer, got %T", sp.Table, row[ki])}, false
			}
			if k < c.cfg.DomainLo || k > c.cfg.DomainHi {
				return http.StatusBadRequest, errResponse{
					Error: fmt.Sprintf("routing key %d outside domain [%d,%d]",
						k, c.cfg.DomainLo, c.cfg.DomainHi)}, false
			}
			gi := -1
			for i, sh := range c.shards {
				if k >= sh.Lo && k <= sh.Hi {
					gi = i
					break
				}
			}
			if gi < 0 {
				return http.StatusServiceUnavailable, errResponse{
					Error: fmt.Sprintf("no shard owns key %d", k)}, false
			}
			slices[gi] = append(slices[gi], row)
		}
	} else {
		for gi := range c.shards {
			slices[gi] = sp.Rows
		}
	}

	type groupResult struct {
		replicas int
		deferred bool
		conflict *conflict409
		err      error
	}
	results := make([]groupResult, len(c.shards))
	var wg sync.WaitGroup
	for gi := range c.shards {
		if len(slices[gi]) == 0 {
			continue
		}
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			r := &results[gi]
			r.replicas, r.deferred, r.conflict, r.err =
				c.appendGroup(ctx, gi, sp.Table, token, slices[gi])
		}(gi)
	}
	wg.Wait()

	// Record every group that accepted rows — including groups that then
	// hit a conflict or a failed replica — before deciding the outcome,
	// so a retry (coordinator-internal or a client re-POST with the same
	// token) knows which ranges hold partial state.
	for gi, res := range results {
		if res.replicas > 0 {
			landed[appendRangeKey(c.shards[gi].Lo, c.shards[gi].Hi)] = true
		}
	}

	resp := AppendResponse{Table: sp.Table, Rows: len(sp.Rows), Token: token}
	for gi, res := range results {
		if res.conflict != nil && res.conflict.Epoch > c.shards[gi].Epoch {
			return http.StatusServiceUnavailable, errResponse{
				Error: fmt.Sprintf("routing table stale for group %s: replica reports epoch %d > table epoch %d (%s)",
					c.shards[gi].Addr, res.conflict.Epoch, c.shards[gi].Epoch, res.conflict.Msg),
				Shard: c.shards[gi].Addr,
				Token: token,
			}, true
		}
		if res.err != nil || res.conflict != nil {
			cause := res.err
			if cause == nil {
				cause = res.conflict
			}
			flo, fhi := c.shards[gi].Lo, c.shards[gi].Hi
			return http.StatusBadGateway, errResponse{
				Error: fmt.Sprintf("append to group %s (range [%d,%d]) failed: %v",
					c.shards[gi].Addr, flo, fhi, cause),
				Shard:    c.shards[gi].Addr,
				FailedLo: &flo,
				FailedHi: &fhi,
				Token:    token,
			}, false
		}
		if res.replicas > 0 {
			resp.GroupsContacted++
			resp.ReplicasAppended += res.replicas
			resp.Deferred = resp.Deferred || res.deferred
		}
	}
	return http.StatusOK, resp, false
}

// appendGroup lands one slice on every replica of one group. Appends
// are writes, not reads: a replica that misses the batch would serve
// stale rows if failover or a preferred-replica switch later routed the
// range to it, so all replicas must accept — there is no routing-around
// for ingest. A replica's 409 propagates for the epoch-refresh path.
//
// The slice's idempotency token scopes the batch token to this group's
// range: identical ranges slice the batch identically, so a retried
// send carries the same token and rows, and replicas that already
// applied it answer from their dedup window instead of appending twice.
func (c *Coordinator) appendGroup(ctx context.Context, gi int, table, token string, rows [][]any) (int, bool, *conflict409, error) {
	sub := ingest.Spec{
		Table: table,
		Rows:  rows,
		Epoch: c.shards[gi].Epoch,
		Token: token + "@" + appendRangeKey(c.shards[gi].Lo, c.shards[gi].Hi),
	}
	body, err := json.Marshal(&sub)
	if err != nil {
		return 0, false, nil, err
	}
	landed := 0
	deferred := false
	for _, addr := range c.shards[gi].Replicas {
		c.attempts.Add(1)
		def, conflict, err := c.doAppend(ctx, addr, body)
		if conflict != nil {
			return landed, deferred, conflict, nil
		}
		if err != nil {
			return landed, deferred, nil, fmt.Errorf("%s: %w", addr, err)
		}
		landed++
		deferred = deferred || def
	}
	return landed, deferred, nil, nil
}

// doAppend runs one replica-level POST /append.
func (c *Coordinator) doAppend(ctx context.Context, addr string, body []byte) (bool, *conflict409, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/append", bytes.NewReader(body))
	if err != nil {
		return false, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return false, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		var re struct {
			Error      string `json:"error"`
			OwnedLo    int64  `json:"owned_lo"`
			OwnedHi    int64  `json:"owned_hi"`
			RangeEpoch uint64 `json:"range_epoch"`
		}
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&re); derr != nil {
			return false, nil, fmt.Errorf("decoding 409 body: %w", derr)
		}
		return false, &conflict409{
			OwnedLo: re.OwnedLo, OwnedHi: re.OwnedHi, Epoch: re.RangeEpoch, Msg: re.Error,
		}, nil
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	var ar struct {
		Deferred bool `json:"deferred"`
	}
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ar); derr != nil {
		return false, nil, fmt.Errorf("decoding append response: %w", derr)
	}
	return ar.Deferred, nil, nil
}
