package shard

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker machine. The
// coordinator keeps one breaker per replica address, so a dead replica
// costs the cluster one detection (a timeout or connection error per
// threshold window), not one per query: once the breaker opens, queries
// skip the replica outright until a cooldown-spaced probe succeeds.
type breakerState int

const (
	breakerClosed   breakerState = iota // normal: requests flow, failures counted
	breakerOpen                         // tripped: requests refused until cooldown passes
	breakerHalfOpen                     // cooldown elapsed: exactly one probe in flight
)

// String names the state for health surfaces.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one replica's circuit breaker. All methods are safe for
// concurrent use; the zero value needs threshold and cooldown set (see
// newBreaker).
//
// State machine:
//
//	closed --(threshold consecutive failures)--> open
//	open --(cooldown elapsed, next Allow)--> half-open (that caller probes)
//	half-open --(probe succeeds)--> closed
//	half-open --(probe fails)--> open (cooldown restarts)
//	half-open --(probe abandoned, or outcome lost for a cooldown)--> re-probe
//
// The last transition is the liveness guarantee: a probe whose outcome
// never arrives (the attempt carrying it was discarded — a hedge winner
// cancelled it, the caller's context died) must not exclude the replica
// forever, so Abandon releases it explicitly and Allow treats a probe
// older than the cooldown as lost and admits a fresh one.
type breaker struct {
	mu         sync.Mutex
	state      breakerState
	fails      int       // consecutive failures while closed
	openedAt   time.Time // when the breaker last tripped
	probing    bool      // half-open: a probe request is in flight
	probeStart time.Time // when the in-flight probe was admitted
	threshold  int
	cooldown   time.Duration

	// Counters, read by the coordinator's statz.
	opens         uint64 // closed/half-open -> open transitions
	shortCircuits uint64 // requests refused while open
	probes        uint64 // half-open trial requests admitted
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may be sent to the replica now.
// probe is true when the request is the half-open trial: the caller
// should report its outcome via Success, Failure or Abandon, or the
// breaker stays half-open until another Allow re-probes after the
// cooldown.
func (b *breaker) Allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			b.shortCircuits++
			return false, false
		}
		b.state = breakerHalfOpen
		b.startProbe(now)
		return true, true
	case breakerHalfOpen:
		if b.probing && now.Sub(b.probeStart) < b.cooldown {
			b.shortCircuits++
			return false, false
		}
		// No probe in flight, or the in-flight probe is older than the
		// cooldown — its outcome was evidently lost. Treat it as
		// abandoned and admit a fresh probe rather than excluding the
		// replica forever.
		b.startProbe(now)
		return true, true
	}
	return false, false
}

// startProbe admits a half-open trial request. Caller holds mu.
func (b *breaker) startProbe(now time.Time) {
	b.probing = true
	b.probeStart = now
	b.probes++
}

// Abandon releases a half-open probe without judging the replica: the
// attempt carrying it was cancelled before producing evidence (e.g. a
// sibling hedge already won the range). The breaker stays half-open
// and the next Allow re-probes immediately instead of waiting out the
// lost-probe cooldown.
func (b *breaker) Abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// Success records a successful request: it closes a half-open breaker
// and resets the consecutive-failure count.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// Failure records a failed request (connection error, timeout or 5xx).
// A closed breaker trips after threshold consecutive failures; a
// half-open probe failure re-opens immediately and restarts cooldown.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip(now)
		}
	case breakerHalfOpen:
		b.trip(now)
	case breakerOpen:
		// A straggling failure from before the trip: nothing to do.
	}
}

// trip moves to open. Caller holds mu.
func (b *breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.fails = 0
	b.probing = false
	b.opens++
}

// State returns the current state for health reporting.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counters returns the lifetime transition counters.
func (b *breaker) Counters() (opens, shortCircuits, probes uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.shortCircuits, b.probes
}
