package shard

import (
	"fmt"
	"sort"
)

// ShardInfo is one shard's routing entry: its address and the
// contiguous partition-key range it owns, with the epoch of the handoff
// that assigned it. Shards jointly cover the domain with no gaps or
// overlaps.
type ShardInfo struct {
	// Addr is the group's primary replica — the label used in routing
	// errors and the first-choice target for the group's subqueries.
	Addr string `json:"addr"`
	// Replicas is the full replica group (Addr first). Any live replica
	// can answer for the range: base tables are static and fully
	// replicated, and partial aggregation keeps merged bytes identical
	// regardless of which replica answered. Empty means {Addr}.
	Replicas []string `json:"replicas,omitempty"`
	Lo       int64    `json:"lo"`
	Hi       int64    `json:"hi"`
	Epoch    uint64   `json:"epoch"`
}

// slice is one shard's portion of a routed query: the owning shard's
// index and the query range clamped to its ownership.
type slice struct {
	shard  int
	lo, hi int64
}

// evenSplit cuts [lo, hi] into n contiguous ranges of near-equal width
// (the boot-time assignment, before any heat is observed).
func evenSplit(lo, hi int64, n int) [][2]int64 {
	width := hi - lo + 1
	out := make([][2]int64, n)
	for i := 0; i < n; i++ {
		a := lo + width*int64(i)/int64(n)
		b := lo + width*int64(i+1)/int64(n) - 1
		out[i] = [2]int64{a, b}
	}
	return out
}

// route returns the slices of [lo, hi] by shard ownership, in shard
// order. Shards are kept sorted by Lo, so the slices tile the query
// range left to right.
func route(shards []ShardInfo, lo, hi int64) []slice {
	var out []slice
	for i, sh := range shards {
		a, b := max64(lo, sh.Lo), min64(hi, sh.Hi)
		if a <= b {
			out = append(out, slice{shard: i, lo: a, hi: b})
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// heatBuckets is the resolution of the coordinator's workload
// histogram. Fine enough that one bucket (~1/256 of the domain) bounds
// how far an equi-heat boundary can sit from the ideal cut.
const heatBuckets = 256

// heatMap tracks where queries land on the partition-key domain. Not
// goroutine-safe; the coordinator guards it with its routing lock.
type heatMap struct {
	lo, hi  int64
	buckets [heatBuckets]uint64
	total   uint64
}

func newHeatMap(lo, hi int64) *heatMap {
	return &heatMap{lo: lo, hi: hi}
}

func (h *heatMap) bucketOf(v int64) int {
	if v < h.lo {
		v = h.lo
	}
	if v > h.hi {
		v = h.hi
	}
	i := int((v - h.lo) * heatBuckets / (h.hi - h.lo + 1))
	if i >= heatBuckets {
		i = heatBuckets - 1
	}
	return i
}

// record charges one query touching [lo, hi]: +1 to every bucket the
// range overlaps. A narrow hotspot query concentrates all its heat in
// one bucket; a domain-wide scan spreads it thin — exactly the signal
// equi-heat cuts need.
func (h *heatMap) record(lo, hi int64) {
	a, b := h.bucketOf(lo), h.bucketOf(hi)
	for i := a; i <= b; i++ {
		h.buckets[i]++
		h.total++
	}
}

// boundaries proposes n contiguous ranges covering the domain with
// near-equal accumulated heat: the prefix-sum of the histogram is cut
// at each multiple of total/n. Cold buckets make the cuts fall back
// toward even width (every bucket gets a +1 floor), so an idle cluster
// never collapses all ranges onto one shard.
func (h *heatMap) boundaries(n int) [][2]int64 {
	if n <= 1 {
		return [][2]int64{{h.lo, h.hi}}
	}
	var weights [heatBuckets]uint64
	var total uint64
	for i, b := range h.buckets {
		weights[i] = b + 1
		total += weights[i]
	}
	bounds := make([][2]int64, 0, n)
	domain := h.hi - h.lo + 1
	bucketLo := func(i int) int64 { return h.lo + domain*int64(i)/heatBuckets }
	cut := 0 // first bucket of the current range
	var acc uint64
	for i := 0; i < heatBuckets && len(bounds) < n-1; i++ {
		acc += weights[i]
		// Close the range once it holds its fair share of the remaining
		// heat across the remaining shards.
		remainShards := uint64(n - len(bounds))
		if acc*remainShards >= total && i+1 < heatBuckets {
			bounds = append(bounds, [2]int64{bucketLo(cut), bucketLo(i+1) - 1})
			total -= acc
			acc = 0
			cut = i + 1
		}
	}
	bounds = append(bounds, [2]int64{bucketLo(cut), h.hi})
	return bounds
}

// validate checks that shards tile [lo, hi] exactly: sorted, no gaps,
// no overlaps. The coordinator refuses to install a routing table that
// fails this — a gap drops rows, an overlap double-counts them.
func validate(shards []ShardInfo, lo, hi int64) error {
	if len(shards) == 0 {
		return fmt.Errorf("shard: no shards")
	}
	s := append([]ShardInfo(nil), shards...)
	sort.Slice(s, func(i, j int) bool { return s[i].Lo < s[j].Lo })
	if s[0].Lo != lo {
		return fmt.Errorf("shard: domain starts at %d but first range starts at %d", lo, s[0].Lo)
	}
	for i := 0; i < len(s); i++ {
		if s[i].Lo > s[i].Hi {
			return fmt.Errorf("shard: %s owns empty range [%d,%d]", s[i].Addr, s[i].Lo, s[i].Hi)
		}
		if i > 0 && s[i].Lo != s[i-1].Hi+1 {
			return fmt.Errorf("shard: ranges [%d,%d] and [%d,%d] do not tile",
				s[i-1].Lo, s[i-1].Hi, s[i].Lo, s[i].Hi)
		}
	}
	if s[len(s)-1].Hi != hi {
		return fmt.Errorf("shard: domain ends at %d but last range ends at %d", hi, s[len(s)-1].Hi)
	}
	return nil
}
