package shard

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// replicaState is the coordinator's per-replica bookkeeping: the
// circuit breaker plus the last probe observation. Replica membership
// is static for the life of a coordinator (ranges move between groups;
// replicas do not move between groups), so the map of replicaStates is
// built once at New and read without locking.
type replicaState struct {
	addr string
	br   *breaker

	mu          sync.Mutex
	probed      bool      // a probe has run at least once
	probeOK     bool      // last probe outcome
	probeAt     time.Time // when
	probeEpoch  uint64    // epoch the replica reported owning (0 = none)
	repushes    uint64    // stale-epoch re-pushes the prober performed
	probeErrStr string    // last probe failure, for healthz
}

func (r *replicaState) noteProbe(ok bool, epoch uint64, errStr string, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.probed = true
	r.probeOK = ok
	r.probeAt = now
	r.probeEpoch = epoch
	r.probeErrStr = errStr
}

func (r *replicaState) probeSnapshot() (probed, ok bool, epoch uint64, errStr string, repushes uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.probed, r.probeOK, r.probeEpoch, r.probeErrStr, r.repushes
}

// latencyRing keeps the most recent successful subquery latencies so
// the hedge delay can track the cluster's p95. Bounded and cheap: 128
// samples, sorted on demand (the hedge decision is per range subquery,
// not per row).
const latencySamples = 128

type latencyRing struct {
	mu      sync.Mutex
	samples [latencySamples]time.Duration
	n       int // total recorded (ring position = n % latencySamples)
}

func (l *latencyRing) record(d time.Duration) {
	l.mu.Lock()
	l.samples[l.n%latencySamples] = d
	l.n++
	l.mu.Unlock()
}

// p95 returns the 95th-percentile recorded latency and how many samples
// back it. With fewer than minSamples the caller should fall back to a
// configured default — early traffic is too thin to derive a delay from.
func (l *latencyRing) p95() (time.Duration, int) {
	l.mu.Lock()
	n := l.n
	if n > latencySamples {
		n = latencySamples
	}
	s := make([]time.Duration, n)
	copy(s, l.samples[:n])
	total := l.n
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(n*95)/100], total
}

// backoff returns the jittered failover backoff for the given retry
// attempt (0-based): base·2^attempt, capped, with ±50% jitter — enough
// spread that a burst of queries failing over together does not
// re-stampede the next replica in lockstep.
func failoverBackoff(rng *lockedRand, base, cap time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > cap || d <= 0 {
		d = cap
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(d-half)+1))
}

// lockedRand is a mutex-guarded rand.Rand: jitter draws come from every
// scatter goroutine.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Int63n(n)
}
