// Package workload generates the BigBench-flavoured datasets and query
// workloads of the paper's evaluation (Section 10): a retail star schema
// whose item_sk values can follow either a uniform distribution (the
// synthetic experiments) or an SDSS-shaped histogram (the real-life
// workload experiment), ten join+aggregate query templates with an
// injected range selection on item_sk, and the selectivity × skew
// selection-pattern generators of Table 1.
package workload

import (
	"fmt"
	"math/rand"

	"deepsea/internal/interval"
	"deepsea/internal/relation"
)

// Domain bounds for item_sk, matching the paper's Section 10.4 workload
// ("the domain of the selection attribute is [0, 400,000]").
const (
	ItemSkLo = 0
	ItemSkHi = 400000
)

// ItemSkDomain returns the item_sk domain as an interval.
func ItemSkDomain() interval.Interval { return interval.New(ItemSkLo, ItemSkHi) }

// Sampler draws item_sk *indices* in [0, n) — index i maps to the i-th
// item key. Uniform sampling models the default BigBench instances;
// histogram sampling models the SDSS-shaped data of Section 10.1.
type Sampler func(rng *rand.Rand, n int) int

// UniformSampler samples item indices uniformly.
func UniformSampler(rng *rand.Rand, n int) int { return rng.Intn(n) }

// Per-table byte shares of the instance and simulated rows per GB. The
// shares loosely follow BigBench's retail schema: two large fact tables,
// a smaller reviews table and three dimensions. Rows are simulated
// entities; Width scaling makes each row stand for many real rows so
// Table.Bytes() reports paper-scale sizes.
// realCols is the column count of the real BigBench/TPC-DS table; the
// generator models only the columns the templates touch and adds one
// padding column carrying the remaining width, so base-table scans cost
// the full table bytes while projected views keep only the narrow
// modelled columns (this is what makes a 7 GB view pool meaningful
// against a 500 GB instance, as in Section 10.3).
var tableSpecs = []struct {
	name      string
	byteShare float64
	rowsPerGB float64
	minRows   int
	realCols  int
}{
	{"store_sales", 0.45, 120, 2000, 12},
	{"web_clickstream", 0.25, 80, 1000, 5},
	{"product_reviews", 0.10, 40, 500, 8},
	{"item", 0.10, 24, 400, 11},
	{"customer", 0.05, 12, 200, 9},
	{"store", 0.05, 2, 20, 10},
}

// Data is one generated dataset instance.
type Data struct {
	// GB is the modelled instance size.
	GB int64
	// Tables maps table name to its generated contents.
	Tables map[string]*relation.Table
	// ItemKeys holds the item dimension's keys in increasing order; fact
	// foreign keys are drawn from this set so joins hit.
	ItemKeys []int64
}

// Generate builds a dataset of the given modelled size. The sampler
// shapes the distribution of fact-table item_sk values; nil selects
// uniform.
func Generate(gb int64, seed int64, sampler Sampler) *Data {
	if gb <= 0 {
		panic(fmt.Sprintf("workload: non-positive instance size %d", gb))
	}
	if sampler == nil {
		sampler = UniformSampler
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Data{GB: gb, Tables: make(map[string]*relation.Table)}

	rows := func(spec int) int {
		n := int(float64(gb) * tableSpecs[spec].rowsPerGB)
		if n < tableSpecs[spec].minRows {
			n = tableSpecs[spec].minRows
		}
		return n
	}

	// Item keys: evenly spread over the item_sk domain.
	nItem := rows(3)
	d.ItemKeys = make([]int64, nItem)
	step := float64(ItemSkHi-ItemSkLo+1) / float64(nItem)
	for i := 0; i < nItem; i++ {
		d.ItemKeys[i] = ItemSkLo + int64(float64(i)*step)
	}

	gbBytes := gb * (1 << 30)
	// width is the byte width of one modelled column: the table's
	// per-row bytes spread over its real column count.
	width := func(spec, nRows int) int64 {
		w := int64(float64(gbBytes)*tableSpecs[spec].byteShare) / int64(nRows) / int64(tableSpecs[spec].realCols)
		if w < 1 {
			w = 1
		}
		return w
	}
	// padWidth makes the row's total width equal the table's full
	// per-row bytes: real-column width times the unmodelled column count.
	padWidth := func(spec, nModeled, nRows int) int64 {
		w := width(spec, nRows) * int64(tableSpecs[spec].realCols-nModeled)
		if w < 1 {
			w = 1
		}
		return w
	}

	cats := []string{"apparel", "books", "electronics", "garden", "grocery",
		"jewelry", "music", "shoes", "sports", "toys"}
	regions := []string{"north", "south", "east", "west"}

	// item dimension.
	{
		n := nItem
		w := width(3, n)
		schema := relation.Schema{Name: "item", Cols: []relation.Column{
			{Name: "i_item_sk", Type: relation.Int, Ordered: true, Lo: ItemSkLo, Hi: ItemSkHi, Width: w},
			{Name: "i_category_id", Type: relation.Int, Width: w},
			{Name: "i_category", Type: relation.String, Width: w},
			{Name: "i_price", Type: relation.Float, Width: w},
			{Name: "i_pad", Type: relation.String, Width: padWidth(3, 4, n)},
		}}
		t := relation.NewTable(schema)
		for i := 0; i < n; i++ {
			cid := int64(i % len(cats))
			t.Append(relation.Row{
				relation.IntVal(d.ItemKeys[i]),
				relation.IntVal(cid),
				relation.StringVal(cats[cid]),
				relation.FloatVal(float64(rng.Intn(9900)+100) / 100),
				relation.StringVal(""),
			})
		}
		d.Tables["item"] = t
	}

	// customer dimension.
	nCust := rows(4)
	{
		w := width(4, nCust)
		schema := relation.Schema{Name: "customer", Cols: []relation.Column{
			{Name: "c_customer_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: int64(nCust - 1), Width: w},
			{Name: "c_age", Type: relation.Int, Width: w},
			{Name: "c_income", Type: relation.Float, Width: w},
			{Name: "c_pad", Type: relation.String, Width: padWidth(4, 3, nCust)},
		}}
		t := relation.NewTable(schema)
		for i := 0; i < nCust; i++ {
			t.Append(relation.Row{
				relation.IntVal(int64(i)),
				relation.IntVal(int64(rng.Intn(70) + 18)),
				relation.FloatVal(float64(rng.Intn(180000) + 20000)),
				relation.StringVal(""),
			})
		}
		d.Tables["customer"] = t
	}

	// store dimension.
	nStore := rows(5)
	{
		w := width(5, nStore)
		schema := relation.Schema{Name: "store", Cols: []relation.Column{
			{Name: "s_store_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: int64(nStore - 1), Width: w},
			{Name: "s_region", Type: relation.String, Width: w},
			{Name: "s_pad", Type: relation.String, Width: padWidth(5, 2, nStore)},
		}}
		t := relation.NewTable(schema)
		for i := 0; i < nStore; i++ {
			t.Append(relation.Row{
				relation.IntVal(int64(i)),
				relation.StringVal(regions[i%len(regions)]),
				relation.StringVal(""),
			})
		}
		d.Tables["store"] = t
	}

	// store_sales fact.
	{
		n := rows(0)
		w := width(0, n)
		schema := relation.Schema{Name: "store_sales", Cols: []relation.Column{
			{Name: "ss_item_sk", Type: relation.Int, Ordered: true, Lo: ItemSkLo, Hi: ItemSkHi, Width: w},
			{Name: "ss_customer_sk", Type: relation.Int, Width: w},
			{Name: "ss_store_sk", Type: relation.Int, Width: w},
			{Name: "ss_quantity", Type: relation.Int, Width: w},
			{Name: "ss_sales_price", Type: relation.Float, Width: w},
			{Name: "ss_sold_date_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: 3650, Width: w},
			{Name: "ss_pad", Type: relation.String, Width: padWidth(0, 6, n)},
		}}
		t := relation.NewTable(schema)
		for i := 0; i < n; i++ {
			t.Append(relation.Row{
				relation.IntVal(d.ItemKeys[sampler(rng, nItem)]),
				relation.IntVal(int64(rng.Intn(nCust))),
				relation.IntVal(int64(rng.Intn(nStore))),
				relation.IntVal(int64(rng.Intn(20) + 1)),
				relation.FloatVal(float64(rng.Intn(50000)) / 100),
				relation.IntVal(int64(rng.Intn(3651))),
				relation.StringVal(""),
			})
		}
		d.Tables["store_sales"] = t
	}

	// web_clickstream fact.
	{
		n := rows(1)
		w := width(1, n)
		schema := relation.Schema{Name: "web_clickstream", Cols: []relation.Column{
			{Name: "wcs_item_sk", Type: relation.Int, Ordered: true, Lo: ItemSkLo, Hi: ItemSkHi, Width: w},
			{Name: "wcs_user_sk", Type: relation.Int, Width: w},
			{Name: "wcs_click_date_sk", Type: relation.Int, Ordered: true, Lo: 0, Hi: 3650, Width: w},
			{Name: "wcs_pad", Type: relation.String, Width: padWidth(1, 3, n)},
		}}
		t := relation.NewTable(schema)
		for i := 0; i < n; i++ {
			t.Append(relation.Row{
				relation.IntVal(d.ItemKeys[sampler(rng, nItem)]),
				relation.IntVal(int64(rng.Intn(nCust))),
				relation.IntVal(int64(rng.Intn(3651))),
				relation.StringVal(""),
			})
		}
		d.Tables["web_clickstream"] = t
	}

	// product_reviews fact.
	{
		n := rows(2)
		w := width(2, n)
		schema := relation.Schema{Name: "product_reviews", Cols: []relation.Column{
			{Name: "pr_item_sk", Type: relation.Int, Ordered: true, Lo: ItemSkLo, Hi: ItemSkHi, Width: w},
			{Name: "pr_user_sk", Type: relation.Int, Width: w},
			{Name: "pr_rating", Type: relation.Float, Width: w},
			{Name: "pr_pad", Type: relation.String, Width: padWidth(2, 3, n)},
		}}
		t := relation.NewTable(schema)
		for i := 0; i < n; i++ {
			t.Append(relation.Row{
				relation.IntVal(d.ItemKeys[sampler(rng, nItem)]),
				relation.IntVal(int64(rng.Intn(nCust))),
				relation.FloatVal(float64(rng.Intn(41))/10 + 1),
				relation.StringVal(""),
			})
		}
		d.Tables["product_reviews"] = t
	}

	return d
}

// Schema returns the schema of the named base table.
func (d *Data) Schema(name string) relation.Schema {
	t, ok := d.Tables[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown table %q", name))
	}
	return t.Schema
}

// TotalBytes returns the modelled size of all base tables.
func (d *Data) TotalBytes() int64 {
	var b int64
	for _, t := range d.Tables {
		b += t.Bytes()
	}
	return b
}
