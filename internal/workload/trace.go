package workload

import (
	"math/rand"

	"deepsea/internal/interval"
)

// TraceQuery is one query of a range-tagged trace: a template plus its
// selection range. Traces are what the sharded serving experiments
// replay — the range tag is the routing key, so a trace fully
// determines which shards each query touches.
type TraceQuery struct {
	Template Template
	Lo, Hi   int64
}

// DisjointTrace generates n queries whose ranges each fall entirely
// inside one of k equal slices of the domain, round-robin across
// slices. Every query routes to exactly one shard of a k-shard cluster
// with even boundaries — the zero-coordination workload that exposes a
// cluster's best-case scaling.
func DisjointTrace(n, k int, t Template, selectivity float64, seed int64) []TraceQuery {
	rng := rand.New(rand.NewSource(seed))
	dom := ItemSkDomain()
	width := dom.Len() / int64(k)
	out := make([]TraceQuery, 0, n)
	for i := 0; i < n; i++ {
		s := int64(i % k)
		sliceLo := dom.Lo + s*width
		sliceHi := sliceLo + width - 1
		if s == int64(k-1) {
			sliceHi = dom.Hi
		}
		sliceDom := interval.New(sliceLo, sliceHi)
		iv := RangesAround(1, selectivity, Uniform, sliceDom, 0, rng)[0]
		out = append(out, TraceQuery{Template: t, Lo: iv.Lo, Hi: iv.Hi})
	}
	return out
}

// UniformTrace generates n queries with uniformly placed midpoints over
// the whole domain — ranges land anywhere and may span shard
// boundaries.
func UniformTrace(n int, t Template, selectivity float64, seed int64) []TraceQuery {
	rng := rand.New(rand.NewSource(seed))
	ivs := Ranges(n, selectivity, Uniform, ItemSkDomain(), rng)
	out := make([]TraceQuery, n)
	for i, iv := range ivs {
		out[i] = TraceQuery{Template: t, Lo: iv.Lo, Hi: iv.Hi}
	}
	return out
}

// HotspotTrace generates n heavily skewed queries centred on the given
// domain position (a fraction in [0, 1]): the workload shape that
// overloads whichever shard owns the hot spot until a rebalance narrows
// its range.
func HotspotTrace(n int, t Template, selectivity float64, center float64, seed int64) []TraceQuery {
	rng := rand.New(rand.NewSource(seed))
	dom := ItemSkDomain()
	mid := dom.Lo + int64(center*float64(dom.Len()-1))
	ivs := RangesAround(n, selectivity, Heavy, dom, mid, rng)
	out := make([]TraceQuery, n)
	for i, iv := range ivs {
		out[i] = TraceQuery{Template: t, Lo: iv.Lo, Hi: iv.Hi}
	}
	return out
}

// SpanningTrace generates n queries that each cover (nearly) the whole
// domain: every query scatters to every shard of any cluster. The
// worst-case fan-out workload — exactly what failover and hedging
// experiments need, since every query touches the failing replica
// group. Selectivity trims a random sliver off each end so queries are
// not all literally identical (they still span all even boundaries for
// any k up to ~1/selectivity).
func SpanningTrace(n int, t Template, selectivity float64, seed int64) []TraceQuery {
	rng := rand.New(rand.NewSource(seed))
	dom := ItemSkDomain()
	trim := int64(selectivity * float64(dom.Len()))
	if trim < 1 {
		trim = 1
	}
	out := make([]TraceQuery, n)
	for i := 0; i < n; i++ {
		lo := dom.Lo + rng.Int63n(trim)
		hi := dom.Hi - rng.Int63n(trim)
		out[i] = TraceQuery{Template: t, Lo: lo, Hi: hi}
	}
	return out
}

// MixedTrace interleaves single-shard and spanning work: a DisjointTrace
// backbone with every fourth query replaced by a uniform (potentially
// boundary-crossing) range — the CI smoke workload, exercising both the
// direct-route and scatter-gather paths in one run.
func MixedTrace(n, k int, t Template, selectivity float64, seed int64) []TraceQuery {
	disjoint := DisjointTrace(n, k, t, selectivity, seed)
	uniform := UniformTrace(n, t, 4*selectivity, seed+1)
	for i := 3; i < n; i += 4 {
		disjoint[i] = uniform[i]
	}
	return disjoint
}
