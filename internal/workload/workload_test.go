package workload

import (
	"math"
	"math/rand"
	"testing"

	"deepsea/internal/engine"
	"deepsea/internal/interval"
	"deepsea/internal/query"
)

func TestGenerateSizes(t *testing.T) {
	d := Generate(100, 1, nil)
	total := d.TotalBytes()
	want := int64(100) << 30
	// Within 20% of the requested instance size.
	if math.Abs(float64(total-want)) > 0.2*float64(want) {
		t.Errorf("TotalBytes = %d, want ~%d", total, want)
	}
	for _, spec := range tableSpecs {
		if _, ok := d.Tables[spec.name]; !ok {
			t.Errorf("missing table %s", spec.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(10, 42, nil)
	b := Generate(10, 42, nil)
	for name := range a.Tables {
		if a.Tables[name].Fingerprint() != b.Tables[name].Fingerprint() {
			t.Errorf("table %s differs between equal-seed generations", name)
		}
	}
}

func TestFactKeysJoinWithItem(t *testing.T) {
	d := Generate(10, 1, nil)
	itemKeys := make(map[int64]bool)
	for _, row := range d.Tables["item"].Rows {
		itemKeys[row[0].I] = true
	}
	for _, fact := range []string{"store_sales", "web_clickstream", "product_reviews"} {
		for _, row := range d.Tables[fact].Rows {
			if !itemKeys[row[0].I] {
				t.Fatalf("%s contains item_sk %d absent from item", fact, row[0].I)
			}
		}
	}
}

func TestAllTemplatesExecute(t *testing.T) {
	d := Generate(5, 1, nil)
	e := engine.New(engine.DefaultCostModel())
	for _, tbl := range d.Tables {
		e.AddBaseTable(tbl)
	}
	iv := interval.New(100000, 200000)
	for _, tpl := range AllTemplates {
		q := d.Query(tpl, iv)
		res, err := e.Run(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", tpl, err)
		}
		if res.Table.NumRows() == 0 {
			t.Errorf("%s returned no rows for a 25%% range", tpl)
		}
		// The selection attribute must appear in the plan.
		foundSel := false
		query.Walk(q, func(n query.Node) {
			if s, ok := n.(*query.Select); ok {
				for _, r := range s.Ranges {
					if r.Col == tpl.SelectionAttr() && r.Iv == iv {
						foundSel = true
					}
				}
			}
		})
		if !foundSel {
			t.Errorf("%s: selection on %s not found", tpl, tpl.SelectionAttr())
		}
	}
}

func TestTemplateSelectionNotPushedDown(t *testing.T) {
	d := Generate(5, 1, nil)
	q := d.Query(Q30, interval.New(0, 1000))
	// Plan shape: Aggregate(Select(Project(Join(...)))).
	agg, ok := q.(*query.Aggregate)
	if !ok {
		t.Fatal("root is not an aggregate")
	}
	sel, ok := agg.Child.(*query.Select)
	if !ok {
		t.Fatal("selection is not directly below the aggregate")
	}
	proj, ok := sel.Child.(*query.Project)
	if !ok {
		t.Fatal("selection pushed below the map-side projection")
	}
	if _, ok := proj.Child.(*query.Join); !ok {
		t.Fatal("projection not directly over the join")
	}
	// The fused join must not be a separate Definition 6 candidate; the
	// projected join result is.
	cands := query.CandidateNodes(q)
	for _, c := range cands {
		if _, isJoin := c.(*query.Join); isJoin {
			t.Error("bare join listed as candidate despite projection fusion")
		}
	}
}

func TestRangesSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dom := ItemSkDomain()
	for _, sel := range []float64{Small, Medium, Big} {
		for _, ranges := range [][]interval.Interval{
			Ranges(50, sel, Uniform, dom, rng),
			Ranges(50, sel, Light, dom, rng),
			Ranges(50, sel, Heavy, dom, rng),
		} {
			for _, iv := range ranges {
				got := float64(iv.Len()) / float64(dom.Len())
				if math.Abs(got-sel) > 0.002 {
					t.Fatalf("range %v has selectivity %.4f, want %.2f", iv, got, sel)
				}
				if !dom.ContainsInterval(iv) {
					t.Fatalf("range %v outside domain", iv)
				}
			}
		}
	}
}

func TestSkewConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dom := ItemSkDomain()
	spread := func(ivs []interval.Interval) float64 {
		var mids []float64
		for _, iv := range ivs {
			mids = append(mids, float64(iv.Lo+iv.Hi)/2)
		}
		var mean float64
		for _, m := range mids {
			mean += m
		}
		mean /= float64(len(mids))
		var v float64
		for _, m := range mids {
			v += (m - mean) * (m - mean)
		}
		return math.Sqrt(v / float64(len(mids)))
	}
	u := spread(Ranges(200, Small, Uniform, dom, rng))
	l := spread(Ranges(200, Small, Light, dom, rng))
	h := spread(Ranges(200, Small, Heavy, dom, rng))
	if !(h < l && l < u) {
		t.Errorf("midpoint spreads not ordered: H=%.0f L=%.0f U=%.0f", h, l, u)
	}
	// Heavy skew sigma is 0.25% of the domain (~1000).
	if h > 3*0.0025*float64(dom.Len()) {
		t.Errorf("heavy skew spread %.0f too wide", h)
	}
}

func TestZipfRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dom := ItemSkDomain()
	ivs := ZipfRanges(500, Small, dom, 1.5, rng)
	if len(ivs) != 500 {
		t.Fatalf("got %d ranges", len(ivs))
	}
	// Zipf mass concentrates at the low end of the domain.
	low := 0
	for _, iv := range ivs {
		if (iv.Lo+iv.Hi)/2 < dom.Lo+dom.Len()/10 {
			low++
		}
	}
	if low < 250 {
		t.Errorf("only %d/500 Zipf midpoints in the lowest decile", low)
	}
}

func TestShiftingRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dom := ItemSkDomain()
	ivs := ShiftingRanges([]int64{20000, 40000, 60000}, 10, Small, Heavy, dom, rng)
	if len(ivs) != 30 {
		t.Fatalf("got %d ranges, want 30", len(ivs))
	}
	for phase := 0; phase < 3; phase++ {
		center := float64(20000 * (phase + 1))
		for i := phase * 10; i < (phase+1)*10; i++ {
			mid := float64(ivs[i].Lo+ivs[i].Hi) / 2
			if math.Abs(mid-center) > 0.05*float64(dom.Len()) {
				t.Errorf("query %d midpoint %.0f far from phase center %.0f", i, mid, center)
			}
		}
	}
}

func TestRangeAtClamping(t *testing.T) {
	dom := interval.New(0, 100)
	if got := rangeAt(-50, 10, dom); got.Lo != 0 || got.Len() != 10 {
		t.Errorf("low clamp: %v", got)
	}
	if got := rangeAt(200, 10, dom); got.Hi != 100 || got.Len() != 10 {
		t.Errorf("high clamp: %v", got)
	}
	if got := rangeAt(50, 1000, dom); !dom.ContainsInterval(got) {
		t.Errorf("oversized range not clamped: %v", got)
	}
}

func TestKeyIndexes(t *testing.T) {
	got := Generate(1, 1, nil).KeyIndexes()
	want := map[string]int{
		"item":            0,
		"store_sales":     0,
		"web_clickstream": 0,
		"product_reviews": 0,
	}
	if len(got) != len(want) {
		t.Fatalf("KeyIndexes = %v, want %v", got, want)
	}
	for table, idx := range want {
		if g, ok := got[table]; !ok || g != idx {
			t.Errorf("KeyIndexes[%q] = %d (present %v), want %d", table, g, ok, idx)
		}
	}
	// Replicated dimensions must stay out of the map so coordinators
	// broadcast their appends.
	for _, table := range []string{"customer", "store"} {
		if _, ok := got[table]; ok {
			t.Errorf("KeyIndexes unexpectedly contains replicated table %q", table)
		}
	}
}
