package workload

import (
	"math"
	"math/rand"

	"deepsea/internal/interval"
)

// Selectivity presets from Table 1: the fraction of the domain a query's
// selection range covers.
const (
	Small  = 0.01 // "S"
	Medium = 0.05 // "M"
	Big    = 0.25 // "B"
)

// Skew identifies the distribution of selection-range midpoints
// (Table 1).
type Skew int

// Skew settings.
const (
	// Uniform midpoints ("U").
	Uniform Skew = iota
	// Light skew ("L"): normally distributed midpoints with a standard
	// deviation of 7.5% of the domain.
	Light
	// Heavy skew ("H"): normally distributed midpoints with a standard
	// deviation of 0.25% of the domain.
	Heavy
)

// String returns the Table 1 abbreviation.
func (s Skew) String() string {
	switch s {
	case Uniform:
		return "U"
	case Light:
		return "L"
	case Heavy:
		return "H"
	default:
		return "?"
	}
}

// Sigma returns the skew's midpoint standard deviation as a fraction of
// the domain (0 for uniform).
func (s Skew) Sigma() float64 {
	switch s {
	case Light:
		return 0.075
	case Heavy:
		return 0.0025
	default:
		return 0
	}
}

// Ranges generates n selection ranges over dom with the given selectivity
// (range length as a fraction of the domain) and midpoint skew. Skewed
// midpoints centre on the middle of the domain; use RangesAround to place
// the hot spot elsewhere.
func Ranges(n int, selectivity float64, skew Skew, dom interval.Interval, rng *rand.Rand) []interval.Interval {
	mid := (dom.Lo + dom.Hi) / 2
	return RangesAround(n, selectivity, skew, dom, mid, rng)
}

// RangesAround is Ranges with an explicit hot-spot midpoint for the
// skewed settings (uniform ignores it).
func RangesAround(n int, selectivity float64, skew Skew, dom interval.Interval, center int64, rng *rand.Rand) []interval.Interval {
	out := make([]interval.Interval, 0, n)
	length := int64(math.Max(1, selectivity*float64(dom.Len())))
	for i := 0; i < n; i++ {
		var mid int64
		if skew == Uniform {
			mid = dom.Lo + rng.Int63n(dom.Len())
		} else {
			sigma := skew.Sigma() * float64(dom.Len())
			mid = center + int64(rng.NormFloat64()*sigma)
		}
		out = append(out, rangeAt(mid, length, dom))
	}
	return out
}

// ZipfRanges generates ranges whose midpoints follow a Zipf distribution
// over the domain (Section 10.3's robustness experiment): midpoint rank r
// has probability proportional to 1/r^s.
func ZipfRanges(n int, selectivity float64, dom interval.Interval, s float64, rng *rand.Rand) []interval.Interval {
	if s <= 1 {
		s = 1.5
	}
	z := rand.NewZipf(rng, s, 1, uint64(dom.Len()-1))
	length := int64(math.Max(1, selectivity*float64(dom.Len())))
	out := make([]interval.Interval, 0, n)
	for i := 0; i < n; i++ {
		mid := dom.Lo + int64(z.Uint64())
		out = append(out, rangeAt(mid, length, dom))
	}
	return out
}

// ShiftingRanges generates per-phase heavily-skewed ranges whose hot spot
// jumps between the given midpoints: perPhase queries centred on
// midpoints[0], then perPhase on midpoints[1], and so on — the pattern of
// Sections 10.4 (Figure 9: midpoints 20,000 / 40,000 / 60,000).
func ShiftingRanges(midpoints []int64, perPhase int, selectivity float64, skew Skew, dom interval.Interval, rng *rand.Rand) []interval.Interval {
	var out []interval.Interval
	for _, m := range midpoints {
		out = append(out, RangesAround(perPhase, selectivity, skew, dom, m, rng)...)
	}
	return out
}

// rangeAt builds a range of the given length centred on mid, clamped into
// the domain.
func rangeAt(mid, length int64, dom interval.Interval) interval.Interval {
	lo := mid - length/2
	hi := lo + length - 1
	if lo < dom.Lo {
		lo = dom.Lo
		hi = lo + length - 1
	}
	if hi > dom.Hi {
		hi = dom.Hi
		lo = hi - length + 1
		if lo < dom.Lo {
			lo = dom.Lo
		}
	}
	return interval.New(lo, hi)
}
