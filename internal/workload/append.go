package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"deepsea/internal/relation"
)

// KeyIndexes maps each table that carries the shard-routing key — an
// ordered integer column named *item_sk, the same rule the serving
// tier's ownership check applies — to that column's index. Tables
// absent from the map (customer, store) have no routing key; they are
// fully replicated, and a coordinator broadcasts their appends to
// every range group. The map is schema-derived, so it is identical at
// every instance size and seed.
func (d *Data) KeyIndexes() map[string]int {
	m := make(map[string]int)
	for name, t := range d.Tables {
		for i, c := range t.Schema.Cols {
			if c.Ordered && c.Type == relation.Int && strings.HasSuffix(c.Name, "item_sk") {
				m[name] = i
				break
			}
		}
	}
	return m
}

// AppendRows generates n held-out rows for one of the fact tables —
// rows drawn from the same distributions as Generate but from an
// independent stream, so they model fresh arrivals rather than replays
// of loaded data. Values use the public-API kinds (int64 / float64 /
// string), ready for System.Append, ingest.Spec.Rows, or the JSONL
// append stream.
func (d *Data) AppendRows(table string, n int, seed int64, sampler Sampler) [][]any {
	if sampler == nil {
		sampler = UniformSampler
	}
	// Offset the seed space so an append stream never replays the base
	// generator's draws even under the same user seed.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed1e57))
	nItem := len(d.ItemKeys)
	nCust := d.Tables["customer"].NumRows()
	nStore := d.Tables["store"].NumRows()
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		switch table {
		case "store_sales":
			rows = append(rows, []any{
				d.ItemKeys[sampler(rng, nItem)],
				int64(rng.Intn(nCust)),
				int64(rng.Intn(nStore)),
				int64(rng.Intn(20) + 1),
				float64(rng.Intn(50000)) / 100,
				int64(rng.Intn(3651)),
				"",
			})
		case "web_clickstream":
			rows = append(rows, []any{
				d.ItemKeys[sampler(rng, nItem)],
				int64(rng.Intn(nCust)),
				int64(rng.Intn(3651)),
				"",
			})
		case "product_reviews":
			rows = append(rows, []any{
				d.ItemKeys[sampler(rng, nItem)],
				int64(rng.Intn(nCust)),
				float64(rng.Intn(41))/10 + 1,
				"",
			})
		default:
			panic(fmt.Sprintf("workload: no append generator for table %q", table))
		}
	}
	return rows
}

// TraceAppend is one append batch of a mixed read/write trace.
type TraceAppend struct {
	Table string
	Rows  [][]any
}

// TraceOp is one operation of a mixed read/write trace: exactly one of
// Query and Append is set.
type TraceOp struct {
	Query  *TraceQuery
	Append *TraceAppend
}

// AppendTrace generates a stream of append batches for one fact table:
// batches held-out rows of rowsPer rows each. The ingest-only workload
// for refresh-cost experiments and the deepsea-gen append stream.
func AppendTrace(d *Data, table string, batches, rowsPer int, seed int64) []TraceAppend {
	out := make([]TraceAppend, batches)
	for i := range out {
		out[i] = TraceAppend{Table: table, Rows: d.AppendRows(table, rowsPer, seed+int64(i), nil)}
	}
	return out
}

// MixedReadWriteTrace interleaves reads and ingest: a UniformTrace
// backbone of n queries with every writeEvery-th operation replaced by
// an append batch of rowsPer held-out rows to the given fact table.
// The read/write mix the ingestspeed experiment and the CI ingest smoke
// replay — appends invalidate and refresh views while reads race them.
func MixedReadWriteTrace(d *Data, n int, t Template, selectivity float64, table string, writeEvery, rowsPer int, seed int64) []TraceOp {
	if writeEvery < 2 {
		writeEvery = 2
	}
	queries := UniformTrace(n, t, selectivity, seed)
	out := make([]TraceOp, n)
	batch := 0
	for i := range out {
		if (i+1)%writeEvery == 0 {
			out[i] = TraceOp{Append: &TraceAppend{
				Table: table,
				Rows:  d.AppendRows(table, rowsPer, seed+int64(1000+batch), nil),
			}}
			batch++
			continue
		}
		q := queries[i]
		out[i] = TraceOp{Query: &q}
	}
	return out
}
