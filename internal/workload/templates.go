package workload

import (
	"fmt"

	"deepsea/internal/interval"
	"deepsea/internal/query"
)

// Template identifies one of the ten BigBench-derived query templates
// the paper's evaluation uses (Section 10.1: Q1, Q5, Q7, Q9, Q12, Q16,
// Q20, Q26, Q29, Q30 — the join-bearing templates). Every template has
// the shape
//
//	aggregate( select_{l <= item_sk <= u}( join tree ) )
//
// with the range selection deliberately NOT pushed below the joins
// (Section 10.2: DeepSea's materialization strategy requires selections
// above the candidate views).
type Template int

// The ten templates.
const (
	Q1 Template = iota
	Q5
	Q7
	Q9
	Q12
	Q16
	Q20
	Q26
	Q29
	Q30
)

// AllTemplates lists every template.
var AllTemplates = []Template{Q1, Q5, Q7, Q9, Q12, Q16, Q20, Q26, Q29, Q30}

// String returns the BigBench-style name.
func (t Template) String() string {
	switch t {
	case Q1:
		return "Q1"
	case Q5:
		return "Q5"
	case Q7:
		return "Q7"
	case Q9:
		return "Q9"
	case Q12:
		return "Q12"
	case Q16:
		return "Q16"
	case Q20:
		return "Q20"
	case Q26:
		return "Q26"
	case Q29:
		return "Q29"
	case Q30:
		return "Q30"
	default:
		return fmt.Sprintf("Template(%d)", int(t))
	}
}

// SelectionAttr returns the fact-side item_sk column the template's
// injected selection ranges over.
func (t Template) SelectionAttr() string {
	switch t {
	case Q5, Q12:
		return "wcs_item_sk"
	case Q29:
		return "pr_item_sk"
	default:
		return "ss_item_sk"
	}
}

// Query instantiates the template over the dataset with the given
// item_sk selection range. Every join is immediately projected to the
// columns the template needs (map-side projection, as Hive fuses it), so
// the Definition 6 view candidates are the narrow projected join results
// rather than full-width joins.
func (d *Data) Query(t Template, iv interval.Interval) query.Node {
	scan := func(name string) *query.Scan {
		return query.NewScan(name, d.Schema(name))
	}
	join := func(l query.Node, r query.Node, lc, rc string, keep ...string) *query.Project {
		return &query.Project{
			Child: &query.Join{Left: l, Right: r, LCol: lc, RCol: rc},
			Cols:  keep,
		}
	}
	sales := func(keep ...string) *query.Project {
		return join(scan("store_sales"), scan("item"), "ss_item_sk", "i_item_sk", keep...)
	}
	clicks := func(keep ...string) *query.Project {
		return join(scan("web_clickstream"), scan("item"), "wcs_item_sk", "i_item_sk", keep...)
	}
	reviews := func(keep ...string) *query.Project {
		return join(scan("product_reviews"), scan("item"), "pr_item_sk", "i_item_sk", keep...)
	}
	sel := func(child query.Node) *query.Select {
		return &query.Select{Child: child,
			Ranges: []query.RangePred{{Col: t.SelectionAttr(), Iv: iv}}}
	}

	switch t {
	case Q1: // category revenue
		return &query.Aggregate{
			Child:   sel(sales("ss_item_sk", "i_category_id", "ss_sales_price", "ss_sold_date_sk")),
			GroupBy: []string{"i_category_id"},
			Aggs: []query.AggSpec{
				{Func: query.Count, As: "sales_cnt"},
				{Func: query.Sum, Col: "ss_sales_price", As: "revenue"},
			},
		}
	case Q5: // click volume per category
		return &query.Aggregate{
			Child:   sel(clicks("wcs_item_sk", "i_category_id")),
			GroupBy: []string{"i_category_id"},
			Aggs:    []query.AggSpec{{Func: query.Count, As: "clicks"}},
		}
	case Q7: // regional sales: 3-way join
		return &query.Aggregate{
			Child: sel(join(
				sales("ss_item_sk", "ss_store_sk", "ss_quantity"),
				scan("store"), "ss_store_sk", "s_store_sk",
				"ss_item_sk", "s_region", "ss_quantity",
			)),
			GroupBy: []string{"s_region"},
			Aggs: []query.AggSpec{
				{Func: query.Count, As: "sales_cnt"},
				{Func: query.Sum, Col: "ss_quantity", As: "units"},
			},
		}
	case Q9: // demographics: sales x item x customer
		return &query.Aggregate{
			Child: sel(join(
				sales("ss_item_sk", "ss_customer_sk", "i_category"),
				scan("customer"), "ss_customer_sk", "c_customer_sk",
				"ss_item_sk", "i_category", "c_age",
			)),
			GroupBy: []string{"i_category"},
			Aggs: []query.AggSpec{
				{Func: query.Avg, Col: "c_age", As: "avg_age"},
				{Func: query.Count, As: "sales_cnt"},
			},
		}
	case Q12: // click price stats
		return &query.Aggregate{
			Child:   sel(clicks("wcs_item_sk", "i_category", "i_price")),
			GroupBy: []string{"i_category"},
			Aggs: []query.AggSpec{
				{Func: query.Avg, Col: "i_price", As: "avg_price"},
				{Func: query.Count, As: "clicks"},
			},
		}
	case Q16: // price extremes per category
		return &query.Aggregate{
			Child:   sel(sales("ss_item_sk", "i_category_id", "ss_sales_price", "ss_sold_date_sk")),
			GroupBy: []string{"i_category_id"},
			Aggs: []query.AggSpec{
				{Func: query.Min, Col: "ss_sales_price", As: "min_price"},
				{Func: query.Max, Col: "ss_sales_price", As: "max_price"},
			},
		}
	case Q20: // customer spend
		return &query.Aggregate{
			Child: sel(join(
				sales("ss_item_sk", "ss_customer_sk", "i_category_id", "ss_sales_price"),
				scan("customer"), "ss_customer_sk", "c_customer_sk",
				"ss_item_sk", "i_category_id", "ss_sales_price", "c_income",
			)),
			GroupBy: []string{"i_category_id"},
			Aggs: []query.AggSpec{
				{Func: query.Sum, Col: "ss_sales_price", As: "spend"},
				{Func: query.Avg, Col: "c_income", As: "avg_income"},
			},
		}
	case Q26: // basket size
		return &query.Aggregate{
			Child:   sel(sales("ss_item_sk", "i_category_id", "ss_quantity", "ss_sales_price", "ss_customer_sk", "ss_sold_date_sk")),
			GroupBy: []string{"i_category_id"},
			Aggs:    []query.AggSpec{{Func: query.Avg, Col: "ss_quantity", As: "avg_qty"}},
		}
	case Q29: // review sentiment
		return &query.Aggregate{
			Child:   sel(reviews("pr_item_sk", "i_category", "pr_rating")),
			GroupBy: []string{"i_category"},
			Aggs: []query.AggSpec{
				{Func: query.Avg, Col: "pr_rating", As: "avg_rating"},
				{Func: query.Count, As: "reviews"},
			},
		}
	case Q30: // category affinity (the workhorse of Sections 10.2-10.4)
		return &query.Aggregate{
			Child:   sel(sales("ss_item_sk", "i_category_id", "ss_quantity", "ss_sales_price", "ss_customer_sk", "ss_sold_date_sk")),
			GroupBy: []string{"i_category_id"},
			Aggs: []query.AggSpec{
				{Func: query.Count, As: "sales_cnt"},
				{Func: query.Sum, Col: "ss_quantity", As: "units"},
			},
		}
	default:
		panic(fmt.Sprintf("workload: unknown template %d", int(t)))
	}
}
