package workload

import (
	"fmt"
	"sort"

	"deepsea"
	"deepsea/internal/relation"
)

// Load registers the dataset's tables with a public-API System and
// copies their rows in, so serving frontends and benchmarks can drive
// the fluent query surface over the same deterministic BigBench-derived
// data the core benchmarks use. Tables load in sorted name order, so
// the resulting engine state is reproducible.
func Load(sys *deepsea.System, d *Data) error {
	names := make([]string, 0, len(d.Tables))
	for name := range d.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := d.Tables[name]
		def := deepsea.TableDef{Name: name}
		for _, c := range t.Schema.Cols {
			cd := deepsea.ColumnDef{
				Name:    c.Name,
				Ordered: c.Ordered,
				Lo:      c.Lo,
				Hi:      c.Hi,
				Width:   c.Width,
			}
			switch c.Type {
			case relation.Int:
				cd.Kind = deepsea.Int
			case relation.Float:
				cd.Kind = deepsea.Float
			case relation.String:
				cd.Kind = deepsea.String
			default:
				return fmt.Errorf("workload: table %s column %s has unknown type", name, c.Name)
			}
			def.Columns = append(def.Columns, cd)
		}
		if err := sys.CreateTable(def); err != nil {
			return err
		}
		for _, row := range t.Rows {
			vals := make([]any, len(row))
			for i, v := range row {
				switch t.Schema.Cols[i].Type {
				case relation.Int:
					vals[i] = v.I
				case relation.Float:
					vals[i] = v.F
				default:
					vals[i] = v.S
				}
			}
			if err := sys.Insert(name, vals); err != nil {
				return err
			}
		}
	}
	// The catalog is re-created: replay any base-table appends the
	// datastore recovered, so a warm restart resumes with the ingested
	// rows and a reconciled view pool. No-op without recovered appends.
	if _, err := sys.ApplyRecoveredAppends(); err != nil {
		return fmt.Errorf("workload: replay recovered appends: %w", err)
	}
	return nil
}

// BuildQuery instantiates a template as a public-API fluent query with
// the given item_sk selection range — the root-surface twin of
// Data.Query. Both render to the same plan, so reports and cache keys
// agree across the two surfaces.
func BuildQuery(t Template, lo, hi int64) *deepsea.Query {
	scan := func(name string) *deepsea.Query { return deepsea.Scan(name) }
	sales := func(keep ...string) *deepsea.Query {
		return scan("store_sales").Join(scan("item"), "ss_item_sk", "i_item_sk").Select(keep...)
	}
	clicks := func(keep ...string) *deepsea.Query {
		return scan("web_clickstream").Join(scan("item"), "wcs_item_sk", "i_item_sk").Select(keep...)
	}
	reviews := func(keep ...string) *deepsea.Query {
		return scan("product_reviews").Join(scan("item"), "pr_item_sk", "i_item_sk").Select(keep...)
	}
	sel := func(q *deepsea.Query) *deepsea.Query {
		return q.Where(t.SelectionAttr(), lo, hi)
	}

	switch t {
	case Q1:
		return sel(sales("ss_item_sk", "i_category_id", "ss_sales_price", "ss_sold_date_sk")).
			GroupBy("i_category_id").
			Agg(deepsea.Count("sales_cnt"), deepsea.Sum("ss_sales_price", "revenue"))
	case Q5:
		return sel(clicks("wcs_item_sk", "i_category_id")).
			GroupBy("i_category_id").Agg(deepsea.Count("clicks"))
	case Q7:
		return sel(sales("ss_item_sk", "ss_store_sk", "ss_quantity").
			Join(scan("store"), "ss_store_sk", "s_store_sk").
			Select("ss_item_sk", "s_region", "ss_quantity")).
			GroupBy("s_region").
			Agg(deepsea.Count("sales_cnt"), deepsea.Sum("ss_quantity", "units"))
	case Q9:
		return sel(sales("ss_item_sk", "ss_customer_sk", "i_category").
			Join(scan("customer"), "ss_customer_sk", "c_customer_sk").
			Select("ss_item_sk", "i_category", "c_age")).
			GroupBy("i_category").
			Agg(deepsea.Avg("c_age", "avg_age"), deepsea.Count("sales_cnt"))
	case Q12:
		return sel(clicks("wcs_item_sk", "i_category", "i_price")).
			GroupBy("i_category").
			Agg(deepsea.Avg("i_price", "avg_price"), deepsea.Count("clicks"))
	case Q16:
		return sel(sales("ss_item_sk", "i_category_id", "ss_sales_price", "ss_sold_date_sk")).
			GroupBy("i_category_id").
			Agg(deepsea.Min("ss_sales_price", "min_price"), deepsea.Max("ss_sales_price", "max_price"))
	case Q20:
		return sel(sales("ss_item_sk", "ss_customer_sk", "i_category_id", "ss_sales_price").
			Join(scan("customer"), "ss_customer_sk", "c_customer_sk").
			Select("ss_item_sk", "i_category_id", "ss_sales_price", "c_income")).
			GroupBy("i_category_id").
			Agg(deepsea.Sum("ss_sales_price", "spend"), deepsea.Avg("c_income", "avg_income"))
	case Q26:
		return sel(sales("ss_item_sk", "i_category_id", "ss_quantity", "ss_sales_price", "ss_customer_sk", "ss_sold_date_sk")).
			GroupBy("i_category_id").Agg(deepsea.Avg("ss_quantity", "avg_qty"))
	case Q29:
		return sel(reviews("pr_item_sk", "i_category", "pr_rating")).
			GroupBy("i_category").
			Agg(deepsea.Avg("pr_rating", "avg_rating"), deepsea.Count("reviews"))
	case Q30:
		return sel(sales("ss_item_sk", "i_category_id", "ss_quantity", "ss_sales_price", "ss_customer_sk", "ss_sold_date_sk")).
			GroupBy("i_category_id").
			Agg(deepsea.Count("sales_cnt"), deepsea.Sum("ss_quantity", "units"))
	default:
		panic(fmt.Sprintf("workload: unknown template %d", int(t)))
	}
}
