// Package cache holds a byte-bounded LRU of query results keyed by plan
// fingerprint. Entries record the pool generation of every materialized
// view the cached plan read, so a pool mutation (materialize, evict,
// split, merge, refinement) invalidates exactly the entries over the
// touched views — unrelated entries keep hitting. Cached tables are
// shared and immutable: callers must not mutate a returned *Table.
package cache

import (
	"container/list"
	"sync"

	"deepsea/internal/relation"
)

// Dep pins a cache entry to one materialized view's content generation.
// The entry is valid only while the pool still reports Gen for ViewID.
type Dep struct {
	ViewID string
	Gen    uint64
}

// Stats counts cache traffic. Invalidations are entries dropped on Get
// because a dependency's generation moved — distinct from capacity
// Evictions. AdmissionRejects counts Puts refused by the cost-aware
// admission guard (result larger than the per-entry limit); a disabled
// cache (capacity <= 0) counts its refused Puts separately in
// DisabledPuts so /statz distinguishes "configured off" from "results
// too large to admit".
type Stats struct {
	Hits             int64
	Misses           int64
	Insertions       int64
	Evictions        int64
	Invalidations    int64
	AdmissionRejects int64
	DisabledPuts     int64
}

type entry struct {
	key   string
	tbl   *relation.Table
	bytes int64
	deps  []Dep
	elem  *list.Element
}

// ResultCache is a size-bounded (bytes, not entries) LRU of query
// results. Safe for concurrent use.
type ResultCache struct {
	mu       sync.Mutex
	maxBytes int64
	// maxEntry is the cost-aware admission guard: results larger than
	// this are never cached, so one giant result cannot flush the whole
	// working set on its way through the LRU. Defaults to maxBytes (no
	// guard beyond the trivial whole-cache bound).
	maxEntry int64
	// disabled marks a cache constructed with maxBytes <= 0: Get and Put
	// short-circuit without touching the hit/miss/reject counters, so a
	// configured-off cache does not masquerade as one that is thrashing.
	disabled bool
	bytes    int64
	entries  map[string]*entry
	lru      *list.List // front = most recently used; values are *entry
	stats    Stats
}

// New returns a cache bounded to maxBytes of table payload. maxBytes <=
// 0 yields a cache that stores nothing (every Get misses).
func New(maxBytes int64) *ResultCache {
	return NewWithEntryLimit(maxBytes, maxBytes)
}

// NewWithEntryLimit is New with a cost-aware admission guard: results
// larger than maxEntry bytes are refused (counted in
// Stats.AdmissionRejects) instead of cached. maxEntry <= 0 or >
// maxBytes clamps to maxBytes. maxBytes <= 0 yields a disabled cache:
// every Get misses and every Put is dropped, without polluting the
// traffic counters (historically the zero capacity clamped maxEntry to
// 0 too, so every Put counted as an admission reject).
func NewWithEntryLimit(maxBytes, maxEntry int64) *ResultCache {
	if maxEntry <= 0 || maxEntry > maxBytes {
		maxEntry = maxBytes
	}
	return &ResultCache{
		maxBytes: maxBytes,
		maxEntry: maxEntry,
		disabled: maxBytes <= 0,
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}
}

// Disabled reports whether the cache is configured off (capacity <= 0).
// A nil cache is disabled.
func (c *ResultCache) Disabled() bool {
	return c == nil || c.disabled
}

// Get returns the cached table for key if present and still valid. gen
// reports the pool's current generation for a view id; an entry whose
// recorded dependency generations disagree is stale — it is dropped and
// the Get misses. A hit refreshes the entry's LRU position.
func (c *ResultCache) Get(key string, gen func(viewID string) uint64) (*relation.Table, bool) {
	if c == nil || c.disabled {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	for _, d := range e.deps {
		if gen == nil || gen(d.ViewID) != d.Gen {
			c.drop(e)
			c.stats.Invalidations++
			c.stats.Misses++
			return nil, false
		}
	}
	c.lru.MoveToFront(e.elem)
	c.stats.Hits++
	return e.tbl, true
}

// Put stores tbl under key with the given view dependencies (deps may be
// nil for results over base tables only). A table larger than the
// admission limit (NewWithEntryLimit; at most the whole cache) is
// refused and counted as an admission reject. Storing under an existing
// key replaces the old entry.
func (c *ResultCache) Put(key string, tbl *relation.Table, deps []Dep) {
	if c == nil || tbl == nil {
		return
	}
	if c.disabled {
		c.mu.Lock()
		c.stats.DisabledPuts++
		c.mu.Unlock()
		return
	}
	bytes := tbl.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes > c.maxEntry || bytes > c.maxBytes {
		c.stats.AdmissionRejects++
		return
	}
	if old, ok := c.entries[key]; ok {
		c.drop(old)
	}
	for c.bytes+bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.drop(back.Value.(*entry))
		c.stats.Evictions++
	}
	e := &entry{key: key, tbl: tbl, bytes: bytes, deps: append([]Dep(nil), deps...)}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += bytes
	c.stats.Insertions++
}

// drop removes an entry; the caller holds c.mu.
func (c *ResultCache) drop(e *entry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

// Stats returns a snapshot of the traffic counters.
func (c *ResultCache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Capacity returns the cache's byte bound (0 = caching disabled).
func (c *ResultCache) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.maxBytes
}

// Bytes returns the cached payload size.
func (c *ResultCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
