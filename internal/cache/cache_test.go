package cache

import (
	"fmt"
	"testing"

	"deepsea/internal/relation"
)

// testTable builds a table of n rows with a known byte size.
func testTable(n int) *relation.Table {
	s := relation.Schema{Name: "t", Cols: []relation.Column{{Name: "a", Type: relation.Int}}}
	t := relation.NewTable(s)
	for i := 0; i < n; i++ {
		t.Append(relation.Row{relation.IntVal(int64(i))})
	}
	return t
}

// gens returns a generation lookup over a mutable map.
func gens(m map[string]uint64) func(string) uint64 {
	return func(id string) uint64 { return m[id] }
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	tbl := testTable(10)
	c.Put("k", tbl, nil)
	got, ok := c.Get("k", gens(nil))
	if !ok || got != tbl {
		t.Fatalf("Get = (%v, %v), want the stored table", got, ok)
	}
	if _, ok := c.Get("other", gens(nil)); ok {
		t.Fatal("Get on unknown key hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 insertion", st)
	}
}

func TestByteBoundEvictsLRU(t *testing.T) {
	one := testTable(1).Bytes()
	c := New(3 * one)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), testTable(1), nil)
	}
	if c.Len() != 3 || c.Bytes() != 3*one {
		t.Fatalf("cache holds %d entries / %d bytes, want 3 / %d", c.Len(), c.Bytes(), 3*one)
	}
	// Touch k0 so k1 becomes least recently used, then overflow.
	if _, ok := c.Get("k0", gens(nil)); !ok {
		t.Fatal("k0 missing before overflow")
	}
	c.Put("k3", testTable(1), nil)
	if _, ok := c.Get("k1", gens(nil)); ok {
		t.Fatal("LRU entry k1 survived the overflow")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k, gens(nil)); !ok {
			t.Fatalf("%s evicted, want k1 only", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if c.Bytes() != 3*one {
		t.Fatalf("cache bytes %d exceed bound %d", c.Bytes(), 3*one)
	}
}

func TestOversizedTableNotStored(t *testing.T) {
	c := New(testTable(1).Bytes())
	c.Put("big", testTable(100), nil)
	if c.Len() != 0 {
		t.Fatal("table larger than the cache was stored")
	}
}

func TestGenerationInvalidationIsPrecise(t *testing.T) {
	g := map[string]uint64{"va": 3, "vb": 7}
	c := New(1 << 20)
	c.Put("qa", testTable(1), []Dep{{ViewID: "va", Gen: g["va"]}})
	c.Put("qb", testTable(2), []Dep{{ViewID: "vb", Gen: g["vb"]}})
	c.Put("qbase", testTable(3), nil) // base-only result, no view deps

	// Mutating va (evict/split/merge all bump the generation) must kill
	// exactly qa.
	g["va"]++
	if _, ok := c.Get("qa", gens(g)); ok {
		t.Fatal("entry over mutated view va still hit")
	}
	if _, ok := c.Get("qb", gens(g)); !ok {
		t.Fatal("entry over untouched view vb missed")
	}
	if _, ok := c.Get("qbase", gens(g)); !ok {
		t.Fatal("base-only entry missed after unrelated view mutation")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	// The stale entry is gone, not resurrectable.
	if _, ok := c.Get("qa", gens(g)); ok {
		t.Fatal("invalidated entry reappeared")
	}
}

func TestPutReplacesExistingKey(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", testTable(1), nil)
	repl := testTable(2)
	c.Put("k", repl, nil)
	got, ok := c.Get("k", gens(nil))
	if !ok || got != repl {
		t.Fatal("Put did not replace the existing entry")
	}
	if c.Len() != 1 || c.Bytes() != repl.Bytes() {
		t.Fatalf("cache holds %d entries / %d bytes after replace, want 1 / %d",
			c.Len(), c.Bytes(), repl.Bytes())
	}
}

func TestNilAndZeroCapCache(t *testing.T) {
	var c *ResultCache
	c.Put("k", testTable(1), nil) // must not panic
	if _, ok := c.Get("k", gens(nil)); ok {
		t.Fatal("nil cache hit")
	}
	z := New(0)
	z.Put("k", testTable(1), nil)
	if z.Len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestAdmissionGuardRejectsOversizedResults(t *testing.T) {
	one := testTable(1).Bytes()
	// Cache of 8 rows, admission limit of 2 rows.
	c := NewWithEntryLimit(8*one, 2*one)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), testTable(2), nil)
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", c.Len())
	}
	// A result above the per-entry limit is refused and evicts nothing.
	c.Put("giant", testTable(3), nil)
	if _, ok := c.Get("giant", gens(nil)); ok {
		t.Fatal("oversized result was cached past the admission guard")
	}
	for i := 0; i < 4; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i), gens(nil)); !ok {
			t.Fatalf("k%d lost: the rejected giant must not disturb the working set", i)
		}
	}
	if st := c.Stats(); st.AdmissionRejects != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 admission reject and 0 evictions", st)
	}
}

func TestAdmissionGuardDefaultsToWholeCache(t *testing.T) {
	one := testTable(1).Bytes()
	c := New(4 * one)
	c.Put("fits", testTable(4), nil)
	if _, ok := c.Get("fits", gens(nil)); !ok {
		t.Fatal("whole-cache-sized result must still be admitted by New")
	}
	c.Put("big", testTable(5), nil)
	if _, ok := c.Get("big", gens(nil)); ok {
		t.Fatal("result above the whole cache admitted")
	}
	if st := c.Stats(); st.AdmissionRejects != 1 {
		t.Fatalf("stats = %+v, want 1 admission reject", st)
	}
	// Out-of-range entry limits clamp to the cache size.
	c2 := NewWithEntryLimit(4*one, 100*one)
	c2.Put("fits", testTable(4), nil)
	if _, ok := c2.Get("fits", gens(nil)); !ok {
		t.Fatal("clamped entry limit refused a fitting result")
	}
}

// TestDisabledCache: a zero/negative budget builds a disabled cache
// that short-circuits everything and reports the traffic distinctly —
// DisabledPuts, not AdmissionRejects (a tuning failure) or Misses (a
// capacity signal).
func TestDisabledCache(t *testing.T) {
	for _, c := range []*ResultCache{New(0), New(-1), NewWithEntryLimit(0, 10)} {
		if !c.Disabled() {
			t.Fatal("zero-budget cache not disabled")
		}
		c.Put("k", testTable(3), []Dep{{ViewID: "v", Gen: 1}})
		c.Put("k2", testTable(1), nil)
		if _, ok := c.Get("k", gens(map[string]uint64{"v": 1})); ok {
			t.Error("disabled cache returned a hit")
		}
		s := c.Stats()
		if s.DisabledPuts != 2 {
			t.Errorf("DisabledPuts = %d, want 2", s.DisabledPuts)
		}
		if s.AdmissionRejects != 0 || s.Insertions != 0 || s.Misses != 0 || s.Hits != 0 {
			t.Errorf("disabled cache bled into other counters: %+v", s)
		}
		if c.Len() != 0 || c.Bytes() != 0 {
			t.Errorf("disabled cache holds entries: len=%d bytes=%d", c.Len(), c.Bytes())
		}
	}
	// A nil cache is disabled too (and safe to call).
	var nilCache *ResultCache
	if !nilCache.Disabled() {
		t.Error("nil cache not reported disabled")
	}
}

// TestEnabledCacheNoDisabledPuts: a live cache never counts
// DisabledPuts, even when admission rejects an oversized entry.
func TestEnabledCacheNoDisabledPuts(t *testing.T) {
	c := NewWithEntryLimit(1<<20, 64)
	c.Put("small", testTable(1), nil)
	c.Put("huge", testTable(10_000), nil)
	s := c.Stats()
	if s.DisabledPuts != 0 {
		t.Errorf("enabled cache counted %d DisabledPuts", s.DisabledPuts)
	}
	if s.AdmissionRejects == 0 {
		t.Error("oversized entry not admission-rejected")
	}
	if c.Disabled() {
		t.Error("enabled cache reports disabled")
	}
}
