package maintain

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrdering checks band-then-priority-then-FIFO pop order.
func TestOrdering(t *testing.T) {
	var mu sync.Mutex
	var got []string
	p := NewPool(1, 0, 1, func(batch []*Task) {
		mu.Lock()
		for _, task := range batch {
			got = append(got, task.Payload.(string))
		}
		mu.Unlock()
	})
	// Stall the single worker so all pushes land before any pop.
	gate := make(chan struct{})
	p.Push(&Task{Kind: KindSweep, Payload: "gate"})
	// Wait until the gate task is in flight, then load the queue.
	waitFor(t, func() bool { return p.Stats().InFlight == 1 || p.Stats().Completed == 1 })
	_ = gate

	p.Push(&Task{Kind: KindMerge, Priority: 5, Payload: "merge"})
	p.Push(&Task{Kind: KindMaterialize, Priority: 1, Payload: "mat-lo"})
	p.Push(&Task{Kind: KindMaterialize, Priority: 9, Payload: "mat-hi"})
	p.Push(&Task{Kind: KindSplit, Priority: 3, Payload: "split-a"})
	p.Push(&Task{Kind: KindSplit, Priority: 3, Payload: "split-b"})
	p.Push(&Task{Kind: KindRematerialize, Payload: "remat"})

	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Close()

	want := []string{"gate", "remat", "mat-hi", "mat-lo", "split-a", "split-b", "merge"}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("applied %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("applied %v, want %v", got, want)
		}
	}
}

// TestDedup checks that a pending key is enqueued once and counted.
func TestDedup(t *testing.T) {
	block := make(chan struct{})
	var applied atomic.Int64
	p := NewPool(1, 0, 64, func(batch []*Task) {
		<-block
		applied.Add(int64(len(batch)))
	})
	defer p.Close()
	p.Push(&Task{Kind: KindSweep, Payload: "hold"}) // occupies the worker
	waitFor(t, func() bool { return p.Stats().InFlight == 1 })

	if !p.Push(&Task{Key: "v1@3", Kind: KindMaterialize}) {
		t.Fatal("first keyed push rejected")
	}
	if p.Push(&Task{Key: "v1@3", Kind: KindMaterialize}) {
		t.Fatal("duplicate pending key accepted")
	}
	if !p.Push(&Task{Key: "v1@4", Kind: KindMaterialize}) {
		t.Fatal("distinct generation rejected")
	}
	s := p.Stats()
	if s.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", s.Deduped)
	}
	close(block)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The identity: everything offered is accounted for.
	s = p.Stats()
	if s.Enqueued != s.Completed+s.Failed+s.Deduped+s.Dropped || s.Depth != 0 || s.InFlight != 0 {
		t.Fatalf("lost tasks: %+v", s)
	}
	if applied.Load() != 3 {
		t.Fatalf("applied %d tasks, want 3", applied.Load())
	}
}

// TestBoundedDrop checks that a full queue drops instead of blocking.
func TestBoundedDrop(t *testing.T) {
	block := make(chan struct{})
	p := NewPool(1, 2, 64, func(batch []*Task) { <-block })
	defer p.Close()
	p.Push(&Task{Kind: KindSweep}) // in flight
	waitFor(t, func() bool { return p.Stats().InFlight == 1 })
	p.Push(&Task{Kind: KindSweep})
	p.Push(&Task{Kind: KindSweep})
	if p.Push(&Task{Kind: KindSweep}) {
		t.Fatal("push over capacity accepted")
	}
	if s := p.Stats(); s.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", s.Dropped)
	}
	close(block)
}

// TestFailedAccounting checks executor-set errors count as failed.
func TestFailedAccounting(t *testing.T) {
	p := NewPool(2, 0, 64, func(batch []*Task) {
		for _, task := range batch {
			if task.Payload == "bad" {
				task.Err = errors.New("boom")
			}
		}
	})
	p.Push(&Task{Kind: KindSplit, Payload: "ok"})
	p.Push(&Task{Kind: KindSplit, Payload: "bad"})
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Close()
	s := p.Stats()
	if s.Failed != 1 || s.Completed != 1 {
		t.Fatalf("completed=%d failed=%d, want 1/1", s.Completed, s.Failed)
	}
	var split KindStats
	for _, ks := range s.Kinds {
		if ks.Kind == "split" {
			split = ks
		}
	}
	if split.Completed != 2 {
		t.Fatalf("split kind completed = %d, want 2", split.Completed)
	}
}

// TestDrainContext checks Drain honours an expiring context.
func TestDrainContext(t *testing.T) {
	block := make(chan struct{})
	p := NewPool(1, 0, 64, func(batch []*Task) { <-block })
	defer p.Close()        // LIFO: runs after the worker is unblocked
	defer close(block)
	p.Push(&Task{Kind: KindSweep})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); err == nil {
		t.Fatal("drain returned nil with a stuck worker")
	}
}

// TestReenqueueDuringDrain checks that tasks pushed by the executor
// (re-materialization retries) are drained too.
func TestReenqueueDuringDrain(t *testing.T) {
	var p *Pool
	var retried atomic.Bool
	p = NewPool(1, 0, 64, func(batch []*Task) {
		for _, task := range batch {
			if task.Payload == "retry-once" && retried.CompareAndSwap(false, true) {
				p.Push(&Task{Kind: KindRematerialize, Payload: "retried"})
			}
		}
	})
	defer p.Close()
	p.Push(&Task{Kind: KindRematerialize, Payload: "retry-once"})
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Completed != 2 {
		t.Fatalf("completed = %d, want 2 (retry drained)", s.Completed)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
