// Package maintain implements the background maintenance dataflow: a
// prioritized task queue drained by a bounded worker pool, so the query
// path only enqueues maintenance candidates (materialize, split, merge,
// speculative re-materialization) and returns without paying for them.
//
// The shape follows claircore's matching architecture: concurrent
// workers consume a shared stream and each commits one batched store
// request. Here a worker pops a batch of tasks, the executor applies
// them under a single view-stripe acquisition, and the journal records
// of the whole batch are group-appended in one store call.
//
// Ordering: tasks pop highest band first (re-materialization before
// materialization before splits before merges before sweeps — the same
// relative order the inline maintenance section used), within a band by
// descending Φ value, and FIFO among equals. Tasks carry a dedup key
// (view id + pool generation); enqueueing a key already pending is
// counted and dropped — two queries planning the same mutation against
// the same pool state produce byte-identical work, so one suffices.
// The queue is bounded: when full, new tasks are dropped and counted
// rather than blocking the query path. Dropped maintenance is never
// lost for good — the workload regenerates any still-profitable
// candidate on its next repetition.
package maintain

import (
	"container/heap"
	"context"
	"sort"
	"sync"
	"time"
)

// Kind classifies a maintenance task. The numeric value is its ordering
// band: higher bands drain first.
type Kind int

const (
	// KindSweep applies a query's maintenance residue: measured
	// candidate sizes and pool evictions.
	KindSweep Kind = iota
	// KindMerge merges co-accessed adjacent fragments.
	KindMerge
	// KindSplit materializes one fragment candidate (a refinement split
	// or a remainder-gap recovery).
	KindSplit
	// KindMaterialize materializes a selected view (whole or as its
	// initial fragments).
	KindMaterialize
	// KindRematerialize speculatively re-materializes a quarantined
	// fragment from its still-resident rows.
	KindRematerialize
	// KindRefresh brings a stale view fresh after a base-table append
	// (incremental delta propagation, or a drop when the delta cannot
	// be applied incrementally). Highest band: a stale view is skipped
	// by the planner, so refreshing it restores rewrite opportunities
	// every other band exists to exploit.
	KindRefresh

	numKinds
)

// String returns the kind's stable name (metrics, health surface).
func (k Kind) String() string {
	switch k {
	case KindSweep:
		return "sweep"
	case KindMerge:
		return "merge"
	case KindSplit:
		return "split"
	case KindMaterialize:
		return "materialize"
	case KindRematerialize:
		return "rematerialize"
	case KindRefresh:
		return "refresh"
	}
	return "unknown"
}

// Task is one unit of deferred maintenance. The payload is opaque to
// this package; the executor knows how to apply it.
type Task struct {
	// Key dedupes pending tasks ("" = never deduped). Build it from the
	// view id and the pool generation the task was planned against: a
	// pool mutation changes the generation, so stale and fresh plans
	// never collide.
	Key string
	// Kind selects the ordering band and the latency bucket.
	Kind Kind
	// Priority orders tasks within a band (higher first) — the Φ value
	// of the candidate, when the planner had one.
	Priority float64
	// Payload is the executor's task description.
	Payload any
	// Err, set by the executor, marks the task failed for accounting.
	Err error

	seq      uint64
	enqueued time.Time
	popped   time.Time
}

// KindStats is the per-kind latency/count surface.
type KindStats struct {
	Kind string `json:"kind"`
	// Completed counts tasks of this kind the executor finished
	// (including failed ones — they completed their attempt).
	Completed uint64 `json:"completed"`
	// WaitSeconds is the cumulative enqueue→pop wait.
	WaitSeconds float64 `json:"wait_seconds"`
	// RunSeconds is the cumulative pop→done executor time, attributed
	// per task as an equal share of its batch's wall time.
	RunSeconds float64 `json:"run_seconds"`
}

// Stats is a consistent snapshot of the pool's counters. The identity
// Enqueued == Completed + Failed + Deduped + Dropped + Depth + InFlight
// holds at every snapshot; after a Drain, Depth and InFlight are zero,
// which is the "no lost maintenance" check.
type Stats struct {
	Workers  int `json:"workers"`
	Capacity int `json:"capacity"`
	// Depth is the number of tasks waiting in the queue.
	Depth int `json:"depth"`
	// InFlight is the number of popped tasks an executor is applying.
	InFlight  int         `json:"in_flight"`
	Enqueued  uint64      `json:"enqueued"`
	Completed uint64      `json:"completed"`
	Failed    uint64      `json:"failed"`
	Deduped   uint64      `json:"deduped"`
	Dropped   uint64      `json:"dropped"`
	Kinds     []KindStats `json:"kinds,omitempty"`
}

// Executor applies one popped batch. It runs on a worker goroutine and
// may set Task.Err to mark individual tasks failed; everything else
// about the batch (locking, journaling) is its business.
type Executor func(batch []*Task)

// Pool is the bounded worker pool over the prioritized queue.
type Pool struct {
	exec     Executor
	capacity int
	batchMax int
	workers  int

	mu      sync.Mutex
	cond    *sync.Cond // signalled on push and on drain-relevant transitions
	heap    taskHeap
	pending map[string]bool // keys of queued tasks, for dedup
	seq     uint64
	busy    int // workers currently applying a batch
	closed  bool

	enqueued, completed, failed, deduped, dropped uint64
	kinds                                         [numKinds]KindStats

	wg sync.WaitGroup
}

// NewPool starts a maintenance pool with the given worker count, queue
// capacity and per-drain-cycle batch bound (<=0 selects defaults: one
// worker, 1024 tasks, 64 per batch). Workers run until Close.
func NewPool(workers, capacity, batchMax int, exec Executor) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if capacity <= 0 {
		capacity = 1024
	}
	if batchMax <= 0 {
		batchMax = 64
	}
	p := &Pool{exec: exec, capacity: capacity, batchMax: batchMax, workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.pending = make(map[string]bool)
	for k := range p.kinds {
		p.kinds[k].Kind = Kind(k).String()
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Push enqueues a task. It never blocks: a duplicate pending key is
// counted and dropped (the queued twin does the same work), and a full
// queue drops the task (counted; the workload regenerates profitable
// candidates). Reports whether the task was accepted.
func (p *Pool) Push(t *Task) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Enqueued counts every offer, so the accounting identity
	// Enqueued == Completed + Failed + Deduped + Dropped + Depth + InFlight
	// holds at all times: every offered task is settled exactly once.
	p.enqueued++
	if p.closed {
		p.dropped++
		return false
	}
	if t.Key != "" && p.pending[t.Key] {
		p.deduped++
		return false
	}
	if p.heap.Len() >= p.capacity {
		p.dropped++
		return false
	}
	p.seq++
	t.seq = p.seq
	t.enqueued = time.Now()
	heap.Push(&p.heap, t)
	if t.Key != "" {
		p.pending[t.Key] = true
	}
	p.cond.Broadcast()
	return true
}

// worker is the drain loop: pop a batch, apply it, account it.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.heap.Len() == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed && p.heap.Len() == 0 {
			p.mu.Unlock()
			return
		}
		batch := p.popBatchLocked()
		p.busy++
		p.mu.Unlock()

		start := time.Now()
		p.exec(batch)
		wall := time.Since(start).Seconds()
		share := wall / float64(len(batch))

		p.mu.Lock()
		for _, t := range batch {
			ks := &p.kinds[t.Kind]
			ks.Completed++
			ks.WaitSeconds += t.popped.Sub(t.enqueued).Seconds()
			ks.RunSeconds += share
			if t.Err != nil {
				p.failed++
			} else {
				p.completed++
			}
		}
		p.busy--
		p.cond.Broadcast() // wake Drain waiters and idle workers
		p.mu.Unlock()
	}
}

// popBatchLocked removes up to batchMax tasks in priority order.
func (p *Pool) popBatchLocked() []*Task {
	n := p.heap.Len()
	if n > p.batchMax {
		n = p.batchMax
	}
	batch := make([]*Task, 0, n)
	now := time.Now()
	for i := 0; i < n; i++ {
		t := heap.Pop(&p.heap).(*Task)
		if t.Key != "" {
			delete(p.pending, t.Key)
		}
		t.popped = now
		batch = append(batch, t)
	}
	return batch
}

// Drain blocks until the queue is empty and every worker is idle — all
// maintenance enqueued before the call is applied (tasks the executors
// re-enqueue while draining, e.g. re-materialization retries, are
// drained too). Returns ctx.Err() if the context expires first.
func (p *Pool) Drain(ctx context.Context) error {
	done := make(chan struct{})
	var stop sync.Once
	if d := ctx.Done(); d != nil {
		go func() {
			select {
			case <-d:
				p.cond.Broadcast()
			case <-done:
			}
		}()
	}
	defer stop.Do(func() { close(done) })
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.heap.Len() > 0 || p.busy > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.cond.Wait()
	}
	return nil
}

// Close stops the workers after the queue empties and waits for them to
// exit. Push after Close drops (counted). Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats returns a consistent counter snapshot (one lock acquisition).
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{
		Workers:   p.workers,
		Capacity:  p.capacity,
		Depth:     p.heap.Len(),
		InFlight:  p.busy,
		Enqueued:  p.enqueued,
		Completed: p.completed,
		Failed:    p.failed,
		Deduped:   p.deduped,
		Dropped:   p.dropped,
	}
	for _, ks := range p.kinds {
		if ks.Completed > 0 {
			s.Kinds = append(s.Kinds, ks)
		}
	}
	sort.Slice(s.Kinds, func(i, j int) bool { return s.Kinds[i].Kind < s.Kinds[j].Kind })
	return s
}

// Saturated reports whether the queue is at capacity (health surface:
// the system is degraded when maintenance cannot keep up).
func (p *Pool) Saturated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.heap.Len() >= p.capacity
}

// taskHeap orders tasks by band desc, then priority desc, then FIFO.
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Kind != h[j].Kind {
		return h[i].Kind > h[j].Kind
	}
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
