// Package leakcheck is a test helper that fails a test if it leaks
// goroutines. It snapshots the goroutine count when installed and, at
// test cleanup, retry-compares against that baseline: counts are noisy
// (the runtime and sibling tests start and stop goroutines), so the
// check polls with backoff and only fails once the deadline passes with
// the count still above baseline.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// deadline bounds how long Check waits for stragglers to exit before
// declaring a leak. Generous on purpose: a real leak never drains, so
// waiting costs nothing on passing tests beyond the final poll.
const deadline = 2 * time.Second

// Check snapshots the current goroutine count and registers a cleanup
// that fails t if, after retries, more goroutines are running than at
// the snapshot. Call it first thing in any test that spawns workers:
//
//	func TestX(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		var n int
		for wait := time.Millisecond; ; wait *= 2 {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if wait > deadline {
				break
			}
			time.Sleep(wait)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines leaked (baseline %d, now %d); stacks:\n%s",
			n-base, base, n, buf)
	})
}
