//go:build !lockcheck

package lockcheck

// Enabled reports whether lock-order checking is compiled in.
const Enabled = false

// Acquire records that the calling goroutine is taking the lock with
// the given rank and index. No-op without the lockcheck build tag.
func Acquire(rank, idx int, name string) {}

// Release records that the calling goroutine dropped the lock. No-op
// without the lockcheck build tag.
func Release(rank, idx int, name string) {}
