//go:build lockcheck

package lockcheck

import (
	"sync"
	"testing"
)

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected a lock-order panic")
		}
	}()
	fn()
}

func TestOrderedAcquisitionPasses(t *testing.T) {
	Acquire(RankPlan, 0, "planMu")
	Acquire(RankView, 3, "stripe 3")
	Acquire(RankView, 7, "stripe 7")
	Acquire(RankPin, 0, "pinMu")
	Release(RankPin, 0, "pinMu")
	Release(RankView, 7, "stripe 7")
	Release(RankView, 3, "stripe 3")
	Release(RankPlan, 0, "planMu")
}

func TestRankInversionPanics(t *testing.T) {
	Acquire(RankView, 2, "stripe 2")
	defer Release(RankView, 2, "stripe 2")
	mustPanic(t, func() { Acquire(RankPlan, 0, "planMu") })
}

func TestStripeIndexInversionPanics(t *testing.T) {
	Acquire(RankView, 5, "stripe 5")
	defer Release(RankView, 5, "stripe 5")
	mustPanic(t, func() { Acquire(RankView, 1, "stripe 1") })
}

func TestSameStripeReacquirePanics(t *testing.T) {
	Acquire(RankView, 5, "stripe 5")
	defer Release(RankView, 5, "stripe 5")
	mustPanic(t, func() { Acquire(RankView, 5, "stripe 5") })
}

func TestReleaseOutOfOrderIsAccepted(t *testing.T) {
	Acquire(RankPlan, 0, "planMu")
	Acquire(RankView, 1, "stripe 1")
	Release(RankPlan, 0, "planMu")
	Release(RankView, 1, "stripe 1")
}

func TestPerGoroutineTracking(t *testing.T) {
	// Two goroutines holding inverted ranks concurrently are fine —
	// ordering is a per-goroutine property.
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, rank := range []int{RankPlan, RankPin} {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			<-start
			Acquire(rank, 0, "x")
			Release(rank, 0, "x")
		}(rank)
	}
	close(start)
	wg.Wait()
}

func TestReleaseUnheldPanics(t *testing.T) {
	mustPanic(t, func() { Release(RankPin, 0, "pinMu") })
}
