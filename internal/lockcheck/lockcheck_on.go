//go:build lockcheck

package lockcheck

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// Enabled reports whether lock-order checking is compiled in.
const Enabled = true

type entry struct {
	rank, idx int
	name      string
}

var (
	mu   sync.Mutex
	held = make(map[uint64][]entry)
)

// TestHook, when non-nil, observes every Acquire after its order check
// passes. It runs under the checker's mutex, so it must not call back
// into lockcheck. Tests install it to assert lock-freedom of specific
// paths — e.g. that a cache-hit query acquires no tracked lock at all.
var TestHook func(rank, idx int, name string)

// goid extracts the calling goroutine's id from its stack header
// ("goroutine 123 [running]:"). Debug-build only, so the cost of the
// stack capture is acceptable.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		panic(fmt.Sprintf("lockcheck: cannot parse goroutine id from %q", s))
	}
	return id
}

// Acquire records a lock acquisition and panics if it violates the
// documented order: each manager lock taken must have a strictly
// greater (rank, index) than the one taken before it.
func Acquire(rank, idx int, name string) {
	g := goid()
	mu.Lock()
	defer mu.Unlock()
	s := held[g]
	if len(s) > 0 {
		top := s[len(s)-1]
		if rank < top.rank || (rank == top.rank && idx <= top.idx) {
			panic(fmt.Sprintf(
				"lockcheck: acquiring %s (rank %d, idx %d) while holding %s (rank %d, idx %d) violates the lock order",
				name, rank, idx, top.name, top.rank, top.idx))
		}
	}
	held[g] = append(s, entry{rank: rank, idx: idx, name: name})
	if h := TestHook; h != nil {
		h(rank, idx, name)
	}
}

// Release records a lock release. Releases may happen in any order;
// the most recently acquired matching entry is removed.
func Release(rank, idx int, name string) {
	g := goid()
	mu.Lock()
	defer mu.Unlock()
	s := held[g]
	for i := len(s) - 1; i >= 0; i-- {
		if s[i].rank == rank && s[i].idx == idx {
			held[g] = append(s[:i], s[i+1:]...)
			if len(held[g]) == 0 {
				delete(held, g)
			}
			return
		}
	}
	panic(fmt.Sprintf("lockcheck: releasing %s (rank %d, idx %d) that is not held", name, rank, idx))
}
