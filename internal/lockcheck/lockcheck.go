// Package lockcheck provides a debug-build lock-order checker for the
// view manager's lock hierarchy. In a normal build every function here
// is an empty no-op that the compiler eliminates; built with
// `-tags lockcheck` the package tracks, per goroutine, the stack of
// manager locks held and panics the moment an acquisition violates the
// documented order — so an ordering bug fails a test loudly instead of
// deadlocking it silently.
//
// The checked hierarchy (DESIGN.md §6) is, outermost first:
//
//	planMu  (RankPlan)  — the short-lived planning lock
//	view stripes (RankView, sub-ordered by ascending stripe index)
//	pinMu   (RankPin)   — the in-flight path pin counter
//
// Leaf locks (pool, stats shards, filter tree, engine, storage FS,
// result cache) are not tracked: they never nest into each other or
// call back into the manager, which `go test -race` exercises anyway.
package lockcheck

// Ranks of the manager locks, outermost first. A goroutine may only
// acquire a lock whose (rank, index) is strictly greater than that of
// the last manager lock it acquired; view stripes use their stripe
// index as the tiebreaker so multi-stripe lock sets must be taken in
// ascending index order.
const (
	RankPlan = 1
	RankView = 2
	RankPin  = 3
)
