package sdss

import (
	"math/rand"
	"testing"

	"deepsea/internal/interval"
)

func TestAccessHistogramShape(t *testing.T) {
	h := AccessHistogram(40)
	if h.Bins() != 40 {
		t.Fatalf("bins = %d", h.Bins())
	}
	// The dominant mass must sit between 150 and 260 degrees.
	massIn := func(loDeg, hiDeg float64) float64 {
		var m float64
		for i := range h.Counts {
			iv := h.BinInterval(i)
			mid := float64(iv.Lo+iv.Hi) / 2 / RAScale
			if mid >= loDeg && mid <= hiDeg {
				m += h.Counts[i]
			}
		}
		return m
	}
	hot := massIn(140, 270)
	cold := massIn(40, 90)
	if hot < 3*cold {
		t.Errorf("hot region mass %.2f not dominant over cold %.2f", hot, cold)
	}
	if h.Total() <= 0 {
		t.Error("empty histogram")
	}
}

func TestTraceEvolution(t *testing.T) {
	trace := Trace(TraceOptions{N: 10000, Seed: 1})
	if len(trace) != 10000 {
		t.Fatalf("trace length = %d", len(trace))
	}
	dom := Domain()
	meanMid := func(ivs []interval.Interval) float64 {
		var m float64
		n := 0
		for _, iv := range ivs {
			if iv == dom {
				continue // skip whole-domain scans
			}
			m += float64(iv.Lo+iv.Hi) / 2
			n++
		}
		return m / float64(n)
	}
	early := meanMid(trace[:2500])
	late := meanMid(trace[6000:8000])
	// Early queries focus near 230-250 degrees, later ones near 100.
	if early < 180*RAScale || early > 300*RAScale {
		t.Errorf("early mean midpoint %.0f not in the 200-300 degree regime", early/RAScale)
	}
	if late > 150*RAScale {
		t.Errorf("late mean midpoint %.0f did not shift toward 100 degrees", late/RAScale)
	}
	for _, iv := range trace {
		if !dom.ContainsInterval(iv) {
			t.Fatalf("range %v outside domain", iv)
		}
	}
}

func TestTraceContainsFullDomainQueries(t *testing.T) {
	trace := Trace(TraceOptions{N: 5000, Seed: 2})
	dom := Domain()
	full := 0
	for _, iv := range trace[:500] {
		if iv == dom {
			full++
		}
	}
	if full == 0 {
		t.Error("no whole-domain queries in the early trace (Figure 2's vertical line)")
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := Trace(TraceOptions{N: 100, Seed: 7})
	b := Trace(TraceOptions{N: 100, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestSamplerFollowsHistogram(t *testing.T) {
	s := Sampler(40)
	rng := rand.New(rand.NewSource(3))
	n := 4000
	counts := make([]int, n)
	for i := 0; i < 200000; i++ {
		counts[s(rng, n)]++
	}
	// Index corresponding to ~175 degrees must be sampled far more often
	// than one at ~60 degrees.
	hotIdx := int(175.0 / 400 * float64(n))
	coldIdx := int(60.0 / 400 * float64(n))
	hot, cold := 0, 0
	for d := -20; d <= 20; d++ {
		hot += counts[hotIdx+d]
		cold += counts[coldIdx+d]
	}
	if hot < 3*cold {
		t.Errorf("hot index count %d not dominant over cold %d", hot, cold)
	}
}

func TestHitHistogram(t *testing.T) {
	trace := []interval.Interval{
		interval.New(0, 9999),        // bin 0
		interval.New(0, 19999),       // bins 0-1
		interval.New(350000, 355000), // bin 35
	}
	h := HitHistogram(trace, 40)
	if h.Counts[0] != 2 {
		t.Errorf("bin 0 count = %g, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 {
		t.Errorf("bin 1 count = %g, want 1", h.Counts[1])
	}
	if h.Counts[35] != 1 {
		t.Errorf("bin 35 count = %g, want 1", h.Counts[35])
	}
}
