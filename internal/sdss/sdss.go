// Package sdss synthesizes a query trace with the published
// characteristics of the Sloan Digital Sky Survey workload the paper
// builds on (Section 1, Figures 1 and 2): selection ranges on attribute
// ra of table PhotoPrimary whose hit histogram is strongly multi-modal
// (hot spots around 150–250 degrees, a secondary ridge near 330, long
// cold stretches) and whose focus shifts over the query sequence (the
// first ~30% of queries concentrate on 200–300 degrees, later queries on
// values around 100 degrees, with occasional whole-domain scans).
//
// The real trace is not redistributable, so this package generates a
// synthetic equivalent that preserves exactly the two properties DeepSea
// exploits — non-uniform access and evolving access patterns — plus the
// data-distribution histogram used to shape item_sk values in the
// BigBench instance (Section 10.1).
package sdss

import (
	"math"
	"math/rand"

	"deepsea/internal/interval"
)

// RA degrees are scaled by RAScale into integer key space: the paper's
// domain of ra is roughly [-20, 400] degrees; ×1000 gives an integer
// domain aligned with the item_sk domain [0, 400000].
const RAScale = 1000

// Domain returns the scaled ra domain.
func Domain() interval.Interval { return interval.New(0, 400*RAScale) }

// mode is one Gaussian bump of access mass.
type mode struct {
	mu     float64 // degrees
	sigma  float64 // degrees
	weight float64
}

// The stationary access distribution of Figure 1: dominant mass between
// 150 and 260 degrees, a secondary ridge near 330, a small bump near 30,
// and a uniform floor.
var fig1Modes = []mode{
	{mu: 175, sigma: 18, weight: 0.35},
	{mu: 235, sigma: 22, weight: 0.30},
	{mu: 330, sigma: 12, weight: 0.15},
	{mu: 30, sigma: 10, weight: 0.08},
}

const uniformFloor = 0.12 // remaining mass spread over the whole domain

// Histogram is a binned access-count histogram over the scaled domain.
type Histogram struct {
	Dom      interval.Interval
	BinWidth int64
	Counts   []float64
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// BinInterval returns the key interval of bin i.
func (h *Histogram) BinInterval(i int) interval.Interval {
	lo := h.Dom.Lo + int64(i)*h.BinWidth
	hi := lo + h.BinWidth - 1
	if hi > h.Dom.Hi {
		hi = h.Dom.Hi
	}
	return interval.New(lo, hi)
}

// Total returns the summed counts.
func (h *Histogram) Total() float64 {
	var t float64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// AccessHistogram returns the stationary Figure 1 histogram with the
// given number of bins (the paper plots 30-degree buckets; any bin count
// works).
func AccessHistogram(bins int) *Histogram {
	dom := Domain()
	h := &Histogram{
		Dom:      dom,
		BinWidth: (dom.Len() + int64(bins) - 1) / int64(bins),
		Counts:   make([]float64, bins),
	}
	for i := 0; i < bins; i++ {
		iv := h.BinInterval(i)
		mid := float64(iv.Lo+iv.Hi) / 2 / RAScale // degrees
		h.Counts[i] = densityAt(mid) * float64(iv.Len())
	}
	return h
}

// densityAt evaluates the stationary access density at a position in
// degrees.
func densityAt(deg float64) float64 {
	d := uniformFloor / 400
	for _, m := range fig1Modes {
		d += m.weight * gaussian(deg, m.mu, m.sigma)
	}
	return d
}

func gaussian(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// Sampler returns a workload.Sampler-compatible function that draws item
// indices whose keys follow the Figure 1 histogram — used to shape the
// BigBench data distribution in the Section 10.1 experiment.
func Sampler(bins int) func(rng *rand.Rand, n int) int {
	h := AccessHistogram(bins)
	cum := make([]float64, len(h.Counts))
	var total float64
	for i, c := range h.Counts {
		total += c
		cum[i] = total
	}
	return func(rng *rand.Rand, n int) int {
		u := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		iv := h.BinInterval(lo)
		key := iv.Lo + rng.Int63n(iv.Len())
		// Map the key back to an item index (keys are evenly spread).
		idx := int(float64(key-h.Dom.Lo) / float64(h.Dom.Len()) * float64(n))
		if idx >= n {
			idx = n - 1
		}
		return idx
	}
}

// phase describes one regime of the evolving trace (Figure 2).
type phase struct {
	until  float64 // fraction of the trace this phase ends at
	modes  []mode
	fullPr float64 // probability of a whole-domain query
}

// The Figure 2 evolution: queries initially concentrate on 200–300
// degrees, an early burst selects the whole domain, and later queries
// focus around 100 degrees.
var fig2Phases = []phase{
	{until: 0.10, modes: []mode{{mu: 250, sigma: 25, weight: 1}}, fullPr: 0.02},
	{until: 0.30, modes: []mode{{mu: 230, sigma: 30, weight: 0.8}, {mu: 280, sigma: 12, weight: 0.2}}},
	{until: 0.55, modes: []mode{{mu: 100, sigma: 15, weight: 0.7}, {mu: 230, sigma: 30, weight: 0.3}}},
	{until: 0.80, modes: []mode{{mu: 100, sigma: 8, weight: 0.9}, {mu: 170, sigma: 20, weight: 0.1}}},
	{until: 1.00, modes: []mode{{mu: 120, sigma: 10, weight: 0.6}, {mu: 330, sigma: 12, weight: 0.4}}},
}

// TraceOptions tunes trace generation.
type TraceOptions struct {
	// N is the number of queries.
	N int
	// Seed drives the generator.
	Seed int64
	// MeanWidthDeg is the mean selection-range width in degrees
	// (defaults to 4 degrees — narrow ranges like the SDSS workload).
	MeanWidthDeg float64
}

// Trace generates the evolving query trace: n selection ranges over the
// scaled ra domain following the Figure 2 phase structure.
func Trace(opts TraceOptions) []interval.Interval {
	if opts.N <= 0 {
		opts.N = 10000
	}
	if opts.MeanWidthDeg <= 0 {
		opts.MeanWidthDeg = 4
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	dom := Domain()
	out := make([]interval.Interval, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		frac := float64(i) / float64(opts.N)
		ph := fig2Phases[len(fig2Phases)-1]
		for _, p := range fig2Phases {
			if frac < p.until {
				ph = p
				break
			}
		}
		if rng.Float64() < ph.fullPr {
			out = append(out, dom)
			continue
		}
		m := pickMode(ph.modes, rng)
		midDeg := m.mu + rng.NormFloat64()*m.sigma
		widthDeg := opts.MeanWidthDeg * (0.25 + rng.ExpFloat64())
		lo := int64((midDeg - widthDeg/2) * RAScale)
		hi := int64((midDeg + widthDeg/2) * RAScale)
		if lo < dom.Lo {
			lo = dom.Lo
		}
		if hi > dom.Hi {
			hi = dom.Hi
		}
		if hi < lo {
			hi = lo
		}
		out = append(out, interval.New(lo, hi))
	}
	return out
}

func pickMode(modes []mode, rng *rand.Rand) mode {
	var total float64
	for _, m := range modes {
		total += m.weight
	}
	u := rng.Float64() * total
	for _, m := range modes {
		u -= m.weight
		if u <= 0 {
			return m
		}
	}
	return modes[len(modes)-1]
}

// HitHistogram bins a trace's selection ranges into an access histogram
// (each query increments every bin its range overlaps) — the computation
// behind Figure 1.
func HitHistogram(trace []interval.Interval, bins int) *Histogram {
	dom := Domain()
	h := &Histogram{
		Dom:      dom,
		BinWidth: (dom.Len() + int64(bins) - 1) / int64(bins),
		Counts:   make([]float64, bins),
	}
	for _, iv := range trace {
		first := int((iv.Lo - dom.Lo) / h.BinWidth)
		last := int((iv.Hi - dom.Lo) / h.BinWidth)
		for b := first; b <= last && b < bins; b++ {
			h.Counts[b]++
		}
	}
	return h
}
