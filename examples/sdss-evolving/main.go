// SDSS-style evolving workload: the hot spot of an astronomy archive's
// range queries drifts over time (the paper's Figures 1-2). This example
// replays three regimes of an evolving workload and shows DeepSea's
// progressive partitioning following the hot spot: fragment boundaries
// align to whatever region analysts currently explore, and stale regions
// stop accumulating fragments.
//
//	go run ./examples/sdss-evolving
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"deepsea"
)

const domainHi = 400000 // "ra" scaled x1000, like the paper's item_sk mapping

func main() {
	sys := deepsea.New()
	sys.MustCreateTable(deepsea.TableDef{
		Name: "photo_obj",
		Columns: []deepsea.ColumnDef{
			{Name: "ra", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: domainHi, Width: 1 << 17},
			{Name: "magnitude", Kind: deepsea.Float, Width: 1 << 17},
			{Name: "spectrum", Kind: deepsea.String, Width: 1 << 21}, // bulky payload
		},
	})
	sys.MustCreateTable(deepsea.TableDef{
		Name: "run_info",
		Columns: []deepsea.ColumnDef{
			{Name: "ri_ra", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: domainHi, Width: 1 << 15},
			{Name: "ri_survey", Kind: deepsea.String, Width: 1 << 15},
		},
	})
	rng := rand.New(rand.NewSource(7))
	surveys := []string{"legacy", "segue", "supernova"}
	for i := 0; i < 30000; i++ {
		sys.MustInsert("photo_obj", []any{int64(rng.Intn(4000)) * 100, rng.Float64() * 30, ""})
	}
	for i := 0; i < 4000; i++ {
		sys.MustInsert("run_info", []any{int64(i * 100), surveys[i%3]})
	}

	brightness := func(lo, hi int64) *deepsea.Query {
		return deepsea.Scan("photo_obj").
			Join(deepsea.Scan("run_info"), "ra", "ri_ra").
			Select("ra", "ri_survey", "magnitude").
			Where("ra", lo, hi).
			GroupBy("ri_survey").
			Agg(deepsea.Count("objects"), deepsea.Avg("magnitude", "avg_mag"))
	}

	// Three regimes, like Figure 2: analysts first explore 200-300
	// degrees, then shift to ~100 degrees, then to ~330.
	phases := []struct {
		name   string
		center int64
	}{
		{"regime 1: ra ~ 250 deg", 250000},
		{"regime 2: ra ~ 100 deg", 100000},
		{"regime 3: ra ~ 330 deg", 330000},
	}
	const perPhase = 12
	for _, ph := range phases {
		var total float64
		var rewritten int
		for i := 0; i < perPhase; i++ {
			mid := ph.center + rng.Int63n(4000) - 2000
			rep, err := sys.Run(brightness(mid-2000, mid+2000))
			if err != nil {
				panic(err)
			}
			total += rep.SimulatedSeconds()
			if rep.Rewritten {
				rewritten++
			}
		}
		fmt.Printf("%-24s avg %6.1f simulated s/query, %d/%d answered from views\n",
			ph.name, total/perPhase, rewritten, perPhase)
	}

	fmt.Println("\nfragments now covering each regime's neighbourhood:")
	for _, ph := range phases {
		n := 0
		for _, line := range sys.PoolContents() {
			if strings.Contains(line, "fragment") {
				var lo, hi int64
				if _, err := fmt.Sscanf(line[strings.Index(line, "["):], "[%d,%d]", &lo, &hi); err == nil {
					if lo <= ph.center+10000 && hi >= ph.center-10000 && hi-lo < 40000 {
						n++
					}
				}
			}
		}
		fmt.Printf("  %-24s %d small fragments within +-10k of the hot spot\n", ph.name, n)
	}
	fmt.Printf("\npool: %.2f GB across %d entries\n",
		float64(sys.PoolBytes())/(1<<30), len(sys.PoolContents()))
}
