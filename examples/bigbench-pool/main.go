// Pool-limited selection: the same clickstream workload runs against two
// systems with a small materialized-view pool — one ranking pool entries
// with DeepSea's decayed, MLE-smoothed Φ, one with Nectar's measure.
// After the workload narrows its focus, DeepSea retains the neighbours
// of the hot fragments (fragment correlation, the paper's Section 10.3)
// and answers drifting queries from the pool more often.
//
//	go run ./examples/bigbench-pool
package main

import (
	"fmt"
	"math/rand"

	"deepsea"
)

const domainHi = 400000

func buildSystem(opts ...deepsea.Option) *deepsea.System {
	sys := deepsea.New(opts...)
	sys.MustCreateTable(deepsea.TableDef{
		Name: "clicks",
		Columns: []deepsea.ColumnDef{
			{Name: "item", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: domainHi, Width: 1 << 17},
			{Name: "dwell", Kind: deepsea.Float, Width: 1 << 17},
			{Name: "session", Kind: deepsea.String, Width: 1 << 20},
		},
	})
	sys.MustCreateTable(deepsea.TableDef{
		Name: "catalog",
		Columns: []deepsea.ColumnDef{
			{Name: "c_item", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: domainHi, Width: 1 << 14},
			{Name: "c_dept", Kind: deepsea.String, Width: 1 << 14},
		},
	})
	rng := rand.New(rand.NewSource(3))
	depts := []string{"apparel", "garden", "electronics", "media", "grocery"}
	for i := 0; i < 25000; i++ {
		sys.MustInsert("clicks", []any{int64(rng.Intn(5000)) * 80, rng.Float64() * 300, ""})
	}
	for i := 0; i < 5000; i++ {
		sys.MustInsert("catalog", []any{int64(i * 80), depts[i%len(depts)]})
	}
	return sys
}

func clicksByDept(lo, hi int64) *deepsea.Query {
	return deepsea.Scan("clicks").
		Join(deepsea.Scan("catalog"), "item", "c_item").
		Select("item", "c_dept", "dwell").
		Where("item", lo, hi).
		GroupBy("c_dept").
		Agg(deepsea.Count("clicks"), deepsea.Avg("dwell", "avg_dwell"))
}

func main() {
	const pool = 1 << 30 // 1 GB: far smaller than the views' total size
	arms := []struct {
		name string
		sys  *deepsea.System
	}{
		{"DeepSea Φ", buildSystem(deepsea.WithPoolLimit(pool))},
		{"Nectar", buildSystem(deepsea.WithPoolLimit(pool), deepsea.WithNectarSelection())},
	}

	// Wide exploratory queries first, then a narrow drifting focus.
	rng := rand.New(rand.NewSource(9))
	type span struct{ lo, hi int64 }
	var workload []span
	for i := 0; i < 8; i++ {
		mid := int64(200000) + rng.Int63n(2000) - 1000
		workload = append(workload, span{mid - 50000, mid + 50000})
	}
	for i := 0; i < 16; i++ {
		mid := int64(200000) + rng.Int63n(6000) - 3000
		workload = append(workload, span{mid - 2000, mid + 2000})
	}

	for _, arm := range arms {
		var total float64
		var fromPool, evictions int
		for _, q := range workload {
			rep, err := arm.sys.Run(clicksByDept(q.lo, q.hi))
			if err != nil {
				panic(err)
			}
			total += rep.SimulatedSeconds()
			if rep.Rewritten {
				fromPool++
			}
			evictions += len(rep.Evicted)
		}
		fmt.Printf("%-10s total %7.0f simulated s  %2d/%d queries from pool  %3d evictions  pool %.2f GB\n",
			arm.name, total, fromPool, len(workload), evictions,
			float64(arm.sys.PoolBytes())/(1<<30))
	}
}
