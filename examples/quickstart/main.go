// Quickstart: build a tiny retail dataset, run three queries, and watch
// DeepSea materialize a partitioned view on the first query and answer
// the following ones from fragments.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"deepsea"
)

func main() {
	sys := deepsea.New()

	// Column widths inflate each simulated row so the 20k-row table
	// models a multi-GB instance; the unprojected "details" column is
	// what materialized views save by dropping.
	sys.MustCreateTable(deepsea.TableDef{
		Name: "sales",
		Columns: []deepsea.ColumnDef{
			{Name: "item", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: 9999, Width: 1 << 18},
			{Name: "amount", Kind: deepsea.Float, Width: 1 << 18},
			{Name: "details", Kind: deepsea.String, Width: 1 << 21},
		},
	})
	sys.MustCreateTable(deepsea.TableDef{
		Name: "product",
		Columns: []deepsea.ColumnDef{
			{Name: "p_item", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: 9999, Width: 1 << 16},
			{Name: "p_category", Kind: deepsea.String, Width: 1 << 16},
		},
	})

	rng := rand.New(rand.NewSource(42))
	categories := []string{"books", "music", "garden", "toys"}
	for i := 0; i < 20000; i++ {
		sys.MustInsert("sales", []any{rng.Int63n(10000), float64(rng.Intn(10000)) / 100, ""})
	}
	for i := 0; i < 10000; i++ {
		sys.MustInsert("product", []any{int64(i), categories[i%len(categories)]})
	}

	// The analyst's question: revenue by category for an item range.
	// DeepSea wants the range selection above the join, so it can learn
	// partition boundaries from it.
	revenue := func(lo, hi int64) *deepsea.Query {
		return deepsea.Scan("sales").
			Join(deepsea.Scan("product"), "item", "p_item").
			Select("item", "p_category", "amount").
			Where("item", lo, hi).
			GroupBy("p_category").
			Agg(deepsea.Count("n"), deepsea.Sum("amount", "revenue"))
	}

	queries := []struct{ lo, hi int64 }{
		{1000, 1999}, // first sight: materializes the join view, partitioned
		{1100, 1899}, // inside the hot fragment: answered from one fragment
		{1500, 2400}, // drifts right: fragments + progressive refinement
	}
	for i, q := range queries {
		rep, err := sys.Run(revenue(q.lo, q.hi))
		if err != nil {
			panic(err)
		}
		src := "base tables"
		if rep.Rewritten {
			src = fmt.Sprintf("view (%d fragments, %d remainder gaps)",
				rep.FragmentsRead, rep.RemainderGaps)
		}
		fmt.Printf("query %d  [%d,%d]  %6.1f simulated s  from %s\n",
			i+1, q.lo, q.hi, rep.SimulatedSeconds(), src)
		for _, row := range rep.Rows() {
			fmt.Printf("   %-8s n=%-5d revenue=%.2f\n", row[0], row[1], row[2])
		}
		if len(rep.MaterializedViews) > 0 || len(rep.MaterializedFrags) > 0 {
			fmt.Printf("   materialized: %d views, %d fragments\n",
				len(rep.MaterializedViews), len(rep.MaterializedFrags))
		}
	}

	fmt.Println("\nmaterialized view pool:")
	for _, line := range sys.PoolContents() {
		fmt.Println("  ", line)
	}
	fmt.Printf("pool size: %.2f GB (simulated clock %.0f s)\n",
		float64(sys.PoolBytes())/(1<<30), sys.Now())
}
