// Overlapping versus horizontal partitioning on a shifting workload
// (the paper's Figure 9 scenario): the hot spot jumps twice; horizontal
// refinement must rewrite large fragments at each jump, while
// overlapping fragments only write the newly hot piece and keep the old
// fragment in place.
//
//	go run ./examples/overlapping
package main

import (
	"fmt"
	"math/rand"

	"deepsea"
)

const domainHi = 400000

func buildSystem(opts ...deepsea.Option) *deepsea.System {
	sys := deepsea.New(opts...)
	sys.MustCreateTable(deepsea.TableDef{
		Name: "orders",
		Columns: []deepsea.ColumnDef{
			{Name: "item", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: domainHi, Width: 1 << 18},
			{Name: "qty", Kind: deepsea.Int, Width: 1 << 18},
			{Name: "notes", Kind: deepsea.String, Width: 1 << 22},
		},
	})
	sys.MustCreateTable(deepsea.TableDef{
		Name: "sku",
		Columns: []deepsea.ColumnDef{
			{Name: "s_item", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: domainHi, Width: 1 << 14},
			{Name: "s_brand", Kind: deepsea.String, Width: 1 << 14},
		},
	})
	rng := rand.New(rand.NewSource(5))
	brands := []string{"acme", "globex", "initech"}
	for i := 0; i < 25000; i++ {
		sys.MustInsert("orders", []any{int64(rng.Intn(5000)) * 80, rng.Int63n(9) + 1, ""})
	}
	for i := 0; i < 5000; i++ {
		sys.MustInsert("sku", []any{int64(i * 80), brands[i%3]})
	}
	return sys
}

func unitsByBrand(lo, hi int64) *deepsea.Query {
	return deepsea.Scan("orders").
		Join(deepsea.Scan("sku"), "item", "s_item").
		Select("item", "s_brand", "qty").
		Where("item", lo, hi).
		GroupBy("s_brand").
		Agg(deepsea.Sum("qty", "units"))
}

func main() {
	arms := []struct {
		name string
		sys  *deepsea.System
	}{
		{"overlapping", buildSystem(deepsea.WithUnboundedFragments())},
		{"horizontal", buildSystem(deepsea.WithHorizontalPartitioning(), deepsea.WithUnboundedFragments())},
	}

	// The Figure 9 pattern: midpoints 20,000 -> 40,000 -> 60,000, ten
	// narrow queries per phase.
	rng := rand.New(rand.NewSource(11))
	var mids []int64
	for _, center := range []int64{20000, 40000, 60000} {
		for i := 0; i < 10; i++ {
			mids = append(mids, center+rng.Int63n(2000)-1000)
		}
	}

	for _, arm := range arms {
		var total, mat float64
		for i, mid := range mids {
			rep, err := arm.sys.Run(unitsByBrand(mid-2000, mid+2000))
			if err != nil {
				panic(err)
			}
			total += rep.SimulatedSeconds()
			mat += rep.MatCost.Seconds
			if (i+1)%10 == 0 {
				fmt.Printf("%-12s after Q%-2d cumulative %6.0f s (materialization %5.0f s)\n",
					arm.name, i+1, total, mat)
			}
		}
		fmt.Println()
	}
	fmt.Println("overlapping partitioning avoids rewriting the big cold fragment at each shift;")
	fmt.Println("horizontal refinement must pay for the complement pieces it splits off.")
}
