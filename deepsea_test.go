package deepsea

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// newSystem builds a small retail system through the public API.
func newSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	s := New(opts...)
	s.MustCreateTable(TableDef{
		Name: "sales",
		Columns: []ColumnDef{
			{Name: "item", Kind: Int, Ordered: true, Lo: 0, Hi: 999, Width: 1 << 18},
			{Name: "amount", Kind: Float, Width: 1 << 18},
			{Name: "pad", Kind: String, Width: 1 << 21},
		},
	})
	s.MustCreateTable(TableDef{
		Name: "product",
		Columns: []ColumnDef{
			{Name: "p_item", Kind: Int, Ordered: true, Lo: 0, Hi: 999, Width: 1 << 16},
			{Name: "p_category", Kind: String, Width: 1 << 16},
		},
	})
	rng := rand.New(rand.NewSource(1))
	cats := []string{"a", "b", "c"}
	for i := 0; i < 5000; i++ {
		s.MustInsert("sales", []any{rng.Int63n(1000), float64(rng.Intn(100)) + 0.5, ""})
	}
	for i := 0; i < 1000; i++ {
		s.MustInsert("product", []any{int64(i), cats[i%3]})
	}
	return s
}

// salesByCategory is the canonical query shape: aggregate over a range
// selection over a projected join.
func salesByCategory(lo, hi int64) *Query {
	return Scan("sales").
		Join(Scan("product"), "item", "p_item").
		Select("item", "p_category", "amount").
		Where("item", lo, hi).
		GroupBy("p_category").
		Agg(Count("n"), Sum("amount", "total"))
}

func TestQuickstartFlow(t *testing.T) {
	s := newSystem(t)
	rep, err := s.Run(salesByCategory(0, 499))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows()) == 0 {
		t.Fatal("no result rows")
	}
	if got := rep.Columns(); len(got) != 3 || got[0] != "p_category" {
		t.Fatalf("columns = %v", got)
	}
	if rep.SimulatedSeconds() <= 0 {
		t.Error("no simulated time charged")
	}
	// The first query materializes views...
	if len(rep.MaterializedViews) == 0 {
		t.Error("first query materialized nothing")
	}
	// ...which later similar queries reuse, faster.
	rep2, err := s.Run(salesByCategory(100, 400))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Rewritten {
		t.Error("second query not answered from a view")
	}
	if rep2.SimulatedSeconds() >= rep.SimulatedSeconds() {
		t.Errorf("reuse (%.1fs) not faster than first run (%.1fs)",
			rep2.SimulatedSeconds(), rep.SimulatedSeconds())
	}
}

func TestResultsMatchBaselineAcrossStrategies(t *testing.T) {
	baseline := newSystem(t, WithoutMaterialization())
	type key struct{ lo, hi int64 }
	queries := []key{{0, 499}, {200, 300}, {250, 280}, {600, 900}, {100, 400}}
	var want []int
	var wantTotals []float64
	for _, q := range queries {
		rep, err := baseline.Run(salesByCategory(q.lo, q.hi))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, len(rep.Rows()))
		var tot float64
		for _, row := range rep.Rows() {
			tot += row[2].(float64)
		}
		wantTotals = append(wantTotals, tot)
	}
	for _, opts := range [][]Option{
		nil,
		{WithoutPartitioning()},
		{WithEquiDepthPartitioning(4)},
		{WithHorizontalPartitioning()},
		{WithNectarSelection()},
		{WithPoolLimit(1 << 30)},
	} {
		s := newSystem(t, opts...)
		for i, q := range queries {
			rep, err := s.Run(salesByCategory(q.lo, q.hi))
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Rows()) != want[i] {
				t.Fatalf("opts %d query %d: %d rows, want %d", len(opts), i, len(rep.Rows()), want[i])
			}
			var tot float64
			for _, row := range rep.Rows() {
				tot += row[2].(float64)
			}
			if diff := tot - wantTotals[i]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("opts %d query %d: total %.2f, want %.2f", len(opts), i, tot, wantTotals[i])
			}
		}
	}
}

func TestEstimateOnlyMode(t *testing.T) {
	s := newSystem(t, WithEstimateOnly())
	rep, err := s.Run(salesByCategory(0, 499))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows() != nil {
		t.Error("estimate-only mode returned rows")
	}
	if rep.SimulatedSeconds() <= 0 {
		t.Error("estimate-only mode charged no time")
	}
}

func TestPoolInspection(t *testing.T) {
	s := newSystem(t)
	if s.PoolBytes() != 0 {
		t.Error("fresh pool not empty")
	}
	if _, err := s.Run(salesByCategory(0, 499)); err != nil {
		t.Fatal(err)
	}
	if s.PoolBytes() == 0 {
		t.Error("pool empty after materializing query")
	}
	if len(s.PoolContents()) == 0 {
		t.Error("PoolContents empty")
	}
	if s.Now() <= 1 {
		t.Error("clock did not advance")
	}
}

func TestCreateTableValidation(t *testing.T) {
	s := New()
	if err := s.CreateTable(TableDef{}); err == nil {
		t.Error("unnamed table accepted")
	}
	def := TableDef{Name: "t", Columns: []ColumnDef{{Name: "a", Kind: Int}}}
	if err := s.CreateTable(def); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(def); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := s.CreateTable(TableDef{Name: "bad",
		Columns: []ColumnDef{{Name: "x", Kind: String, Ordered: true}}}); err == nil {
		t.Error("ordered string column accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	s := New()
	s.MustCreateTable(TableDef{Name: "t", Columns: []ColumnDef{
		{Name: "a", Kind: Int}, {Name: "b", Kind: Float}, {Name: "c", Kind: String},
	}})
	if err := s.Insert("missing", []any{int64(1)}); err == nil {
		t.Error("insert into unknown table accepted")
	}
	if err := s.Insert("t", []any{int64(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := s.Insert("t", []any{"x", 1.0, "s"}); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := s.Insert("t", []any{7, 1.0, "s"}); err != nil {
		t.Errorf("plain int not coerced: %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	s := newSystem(t)
	if _, err := s.Run(Scan("nope")); err == nil {
		t.Error("scan of unknown table accepted")
	}
	if _, err := s.Run(Scan("sales").Where("item", 10, 5)); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestMinMaxAvgAggregates(t *testing.T) {
	s := newSystem(t)
	q := Scan("sales").
		Join(Scan("product"), "item", "p_item").
		Select("item", "p_category", "amount").
		Where("item", 0, 999).
		GroupBy("p_category").
		Agg(Min("amount", "lo"), Max("amount", "hi"), Avg("amount", "mean"))
	rep, err := s.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows() {
		lo, hi, mean := row[1].(float64), row[2].(float64), row[3].(float64)
		if !(lo <= mean && mean <= hi) {
			t.Fatalf("aggregate ordering violated: lo=%g mean=%g hi=%g", lo, mean, hi)
		}
	}
}

func TestWhereEqResidual(t *testing.T) {
	s := newSystem(t)
	q := Scan("product").WhereEq("p_category", "a").
		GroupBy("p_category").Agg(Count("n"))
	rep, err := s.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Rows()
	if len(rows) != 1 || rows[0][0].(string) != "a" {
		t.Fatalf("rows = %v", rows)
	}
	// ceil(1000/3) items in category "a".
	if rows[0][1].(int64) != 334 {
		t.Errorf("count = %v, want 334", rows[0][1])
	}
}

func TestRunContextCancellation(t *testing.T) {
	s := newSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, salesByCategory(0, 499)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext = %v, want context.Canceled", err)
	}
	// The system is untouched and fully usable.
	rep, err := s.Run(salesByCategory(0, 499))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows()) == 0 {
		t.Fatal("no result rows after cancelled run")
	}
}

func TestFaultInjectionDegradesGracefully(t *testing.T) {
	baseline := newSystem(t, WithoutMaterialization())
	want, err := baseline.Run(salesByCategory(0, 499))
	if err != nil {
		t.Fatal(err)
	}

	// Every stored read fails: after the first query materializes views,
	// later queries must quarantine them and fall back to base tables,
	// returning the same answer.
	s := newSystem(t, WithFaultInjection(FaultConfig{Seed: 7, StorageRead: 1}), WithFaultRetries(64))
	if _, err := s.Run(salesByCategory(0, 499)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(salesByCategory(0, 499))
	if err != nil {
		t.Fatalf("query did not degrade to base tables: %v", err)
	}
	if len(rep.Rows()) != len(want.Rows()) {
		t.Fatalf("degraded answer has %d rows, baseline %d", len(rep.Rows()), len(want.Rows()))
	}
	if rep.Retries == 0 && len(rep.Quarantined) == 0 {
		t.Error("fault injection never fired; test proves nothing")
	}
}
