#!/usr/bin/env bash
# The CI pipeline. Both `make ci` and .github/workflows/ci.yml run this
# script and nothing else, so the local gate and the hosted gate are the
# same check by construction.
#
# Stages:
#    1. go vet + build + full test suite
#    2. full race-detector run (the concurrency suite's anchor)
#    3. shuffled double run — flushes ordering-dependent tests
#    4. lock-order assertions (-tags lockcheck builds the checking
#       implementation of internal/lockcheck into the manager's locks)
#    5. chaos smoke — the seeded fault-injection and cancellation suite
#       under the race detector: every surviving query byte-identical to
#       the fault-free run, no leaked goroutines, no leaked pins
#    6. serving smoke — the HTTP frontend's admission, batching and
#       drain-lifecycle suite under the race detector, then shuffled
#    7. crash-recovery chaos — the datastore suite, the core recovery
#       suite, and the kill -9 warm-restart test under the race detector
#    8. staticcheck at a pinned version, when installed (the workflow
#       installs it; local runs skip it with a note — and a workflow
#       warning annotation — rather than demanding the tool)
#    9. bench smoke: cachespeed + lockspeed + faultspeed + servespeed +
#       persistspeed + maintspeed + shardspeed + failspeed + ingestspeed
#       at short scale with JSON reports (the maintspeed run also captures CPU
#       and mutex profiles as artifacts), then a benchcheck preflight
#       (every *speed experiment must have registered floors) and
#       benchcheck gating the host-independent metrics (determinism,
#       cache hit rate, pool mutations, fault-plumbing overhead,
#       load-shed/coalescing behavior, journal overhead and
#       warm-restart fidelity, background-maintenance equivalence and
#       task accounting, cross-shard merge identity and rebalance
#       behavior, replica-failure invisibility, hedging and breaker
#       bounds)
#   10. sharded-cluster smoke — the full scatter-gather suite plus the
#       multi-process chaos tests under the race detector: a coordinator
#       over three real shard subprocesses answers byte-identically to
#       one shard, survives a kill -9 of one shard, and fails queries
#       for the dead range with a 503 naming it; a replicated cluster
#       (two groups x two replicas as subprocesses) absorbs a kill -9 of
#       a primary mid-burst with zero client-visible failures and
#       byte-identical results; and the failover/hedging/breaker suite
#       (with its goroutine-leak checks) re-runs fresh
#   11. ingest smoke — the batched append path under the race detector:
#       the core delta-propagation suite, the all-template
#       delta-vs-remat property tests, the serving tier's /append suite
#       (an append burst racing a query burst, bad-request and
#       ownership rejections, a kill -9 mid-ingest whose warm restart
#       replays the journal to byte-identical results), and the
#       coordinator routing suite (keyed split, keyless broadcast,
#       epoch refresh); ingestspeed runs in the bench smoke with its
#       floors (incremental == remat across templates and shard counts,
#       sublinear refresh cost, bounded read p99 under ingest)
#
# Reports land in BENCH_DIR (default ./bench-reports) as BENCH_<id>.json;
# the workflow uploads them as artifacts.

set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
BENCH_DIR=${BENCH_DIR:-bench-reports}
# The pinned staticcheck version: the workflow installs exactly this,
# and local runs with some other version get a loud note instead of a
# silently different gate.
STATICCHECK_VERSION=${STATICCHECK_VERSION:-2024.1.1}

# skipped STAGE REASON — the loud-skip helper: local runs get a note,
# hosted runs also get a GitHub Actions warning annotation so a skipped
# stage is visible on the run summary, not buried in the log.
skipped() {
    echo "==> $1: skipped ($2)"
    if [ "${GITHUB_ACTIONS:-}" = "true" ]; then
        echo "::warning title=ci.sh stage skipped::$1: $2"
    fi
}

echo "==> vet"
$GO vet ./...

echo "==> build"
$GO build ./...

echo "==> test"
$GO test ./...

echo "==> race"
$GO test -race ./...

echo "==> shuffle (x2)"
$GO test -shuffle=on -count=2 ./...

echo "==> lockcheck"
$GO test -tags lockcheck ./internal/lockcheck ./internal/core

echo "==> chaos smoke (race)"
$GO test -race -run 'TestChaos|TestFragmentReadFault|TestMaterializeFaults|TestPermanentMaterialize|TestProcessQueryContext' ./internal/core
$GO test -race -run 'TestRunContext|TestForEachTask|TestViewScanReadFault' ./internal/engine

echo "==> serving smoke (race + shuffle)"
$GO test -race ./internal/server
$GO test -race -shuffle=on ./internal/server

echo "==> crash-recovery chaos (race)"
$GO test -race ./internal/datastore
$GO test -race -run 'TestRecovery|TestSnapshotNoop' ./internal/core
$GO test -race -run 'TestCrashRecoveryWarmRestart|TestLimiterAbandonHandoverRace' ./internal/server

if command -v staticcheck >/dev/null 2>&1; then
    echo "==> staticcheck ($(staticcheck -version 2>/dev/null || echo unknown))"
    installed=$(staticcheck -version 2>/dev/null || true)
    case "$installed" in
        *"$STATICCHECK_VERSION"*) ;;
        *) echo "note: installed staticcheck ($installed) is not the pinned $STATICCHECK_VERSION" ;;
    esac
    staticcheck ./...
else
    skipped "staticcheck" "not installed; CI pins $STATICCHECK_VERSION"
fi

echo "==> bench smoke"
mkdir -p "$BENCH_DIR"
$GO build -o "$BENCH_DIR/deepsea-bench" ./cmd/deepsea-bench
$GO build -o "$BENCH_DIR/benchcheck" ./cmd/benchcheck
(cd "$BENCH_DIR" && ./deepsea-bench -experiment cachespeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment lockspeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment faultspeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment servespeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment persistspeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment maintspeed -params short -json \
    -cpuprofile maintspeed.cpu.pprof -mutexprofile maintspeed.mutex.pprof)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment shardspeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment failspeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment ingestspeed -params short -json)

echo "==> benchcheck"
"$BENCH_DIR/benchcheck" -preflight
"$BENCH_DIR/benchcheck" "$BENCH_DIR"/BENCH_*.json

echo "==> sharded-cluster smoke (race)"
$GO test -race ./internal/shard
$GO test -race -count=1 -run 'TestShardClusterSmoke|TestReplicatedClusterSmoke' ./internal/shard
$GO test -race -count=1 -run 'TestFailover|TestHedged|TestBreaker|TestProber|TestCoordinatorAdoptsTrueOwnershipOn409' ./internal/shard

echo "==> ingest smoke (race)"
$GO test -race -count=1 -run 'TestAppend|TestCacheInvalidationOnAppend|TestRematOnAppend|TestBackgroundRefresh|TestEmptyAppend' ./internal/core
$GO test -race -count=1 -run 'TestDeltaRefresh' .
$GO test -race -count=1 -run 'TestAppendEndpoint|TestAppendBadRequests|TestAppendOwnership|TestAppendQueryConcurrentSmoke|TestCrashRecoveryMidIngest' ./internal/server
$GO test -race -count=1 -run 'TestCoordinatorAppend' ./internal/shard

echo "==> ci passed"
