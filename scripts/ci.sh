#!/usr/bin/env bash
# The CI pipeline. Both `make ci` and .github/workflows/ci.yml run this
# script and nothing else, so the local gate and the hosted gate are the
# same check by construction.
#
# Stages:
#   1. go vet + build + full test suite
#   2. full race-detector run (the concurrency suite's anchor)
#   3. shuffled double run — flushes ordering-dependent tests
#   4. lock-order assertions (-tags lockcheck builds the checking
#      implementation of internal/lockcheck into the manager's locks)
#   5. chaos smoke — the seeded fault-injection and cancellation suite
#      under the race detector: every surviving query byte-identical to
#      the fault-free run, no leaked goroutines, no leaked pins
#   6. serving smoke — the HTTP frontend's admission, batching and
#      drain-lifecycle suite under the race detector, then shuffled
#   7. crash-recovery chaos — the datastore suite, the core recovery
#      suite, and the kill -9 warm-restart test under the race detector
#   8. staticcheck, when installed (the workflow installs it; local runs
#      skip it with a note rather than demanding the tool)
#   9. bench smoke: cachespeed + lockspeed + faultspeed + servespeed +
#      persistspeed + maintspeed at short scale with JSON reports (the
#      maintspeed run also captures CPU and mutex profiles as
#      artifacts), then benchcheck gates the host-independent metrics
#      (determinism, cache hit rate, pool mutations, fault-plumbing
#      overhead, load-shed/coalescing behavior, journal overhead and
#      warm-restart fidelity, background-maintenance equivalence and
#      task accounting)
#
# Reports land in BENCH_DIR (default ./bench-reports) as BENCH_<id>.json;
# the workflow uploads them as artifacts.

set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
BENCH_DIR=${BENCH_DIR:-bench-reports}

echo "==> vet"
$GO vet ./...

echo "==> build"
$GO build ./...

echo "==> test"
$GO test ./...

echo "==> race"
$GO test -race ./...

echo "==> shuffle (x2)"
$GO test -shuffle=on -count=2 ./...

echo "==> lockcheck"
$GO test -tags lockcheck ./internal/lockcheck ./internal/core

echo "==> chaos smoke (race)"
$GO test -race -run 'TestChaos|TestFragmentReadFault|TestMaterializeFaults|TestPermanentMaterialize|TestProcessQueryContext' ./internal/core
$GO test -race -run 'TestRunContext|TestForEachTask|TestViewScanReadFault' ./internal/engine

echo "==> serving smoke (race + shuffle)"
$GO test -race ./internal/server
$GO test -race -shuffle=on ./internal/server

echo "==> crash-recovery chaos (race)"
$GO test -race ./internal/datastore
$GO test -race -run 'TestRecovery|TestSnapshotNoop' ./internal/core
$GO test -race -run 'TestCrashRecoveryWarmRestart|TestLimiterAbandonHandoverRace' ./internal/server

if command -v staticcheck >/dev/null 2>&1; then
    echo "==> staticcheck"
    staticcheck ./...
else
    echo "==> staticcheck: not installed, skipping (CI installs it)"
fi

echo "==> bench smoke"
mkdir -p "$BENCH_DIR"
$GO build -o "$BENCH_DIR/deepsea-bench" ./cmd/deepsea-bench
$GO build -o "$BENCH_DIR/benchcheck" ./cmd/benchcheck
(cd "$BENCH_DIR" && ./deepsea-bench -experiment cachespeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment lockspeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment faultspeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment servespeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment persistspeed -params short -json)
(cd "$BENCH_DIR" && ./deepsea-bench -experiment maintspeed -params short -json \
    -cpuprofile maintspeed.cpu.pprof -mutexprofile maintspeed.mutex.pprof)

echo "==> benchcheck"
"$BENCH_DIR/benchcheck" "$BENCH_DIR"/BENCH_*.json

echo "==> ci passed"
