module deepsea

go 1.22
