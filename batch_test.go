package deepsea

import (
	"context"
	"errors"
	"testing"
)

// TestRunBatchMatchesSerial is the batching correctness contract: a
// batch plans every item under one planning-lock acquisition, yet the
// results are byte-identical to running the same queries serially on a
// fresh system.
func TestRunBatchMatchesSerial(t *testing.T) {
	ranges := [][2]int64{
		{0, 499}, {100, 400}, {500, 999}, {0, 999},
		{250, 750}, {0, 199}, {600, 899}, {300, 650},
	}

	// The identity contract is multiset equality (the engine does not
	// define an output row order): compare content fingerprints, as the
	// core's own concurrency tests do.
	serial := newSystem(t)
	want := make([]string, len(ranges))
	for i, r := range ranges {
		rep, err := serial.Run(salesByCategory(r[0], r[1]))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep.Result.Fingerprint()
	}

	batched := newSystem(t)
	items := make([]BatchItem, len(ranges))
	for i, r := range ranges {
		items[i] = BatchItem{Query: salesByCategory(r[0], r[1])}
	}
	before := batched.PlanAcquisitions()
	reps, errs := batched.RunBatch(items)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if got := batched.PlanAcquisitions() - before; got != 1 {
		t.Errorf("batch of %d acquired the planning lock %d times, want 1", len(ranges), got)
	}
	for i := range ranges {
		if reps[i].Result.Fingerprint() != want[i] {
			t.Errorf("item %d: batched result differs from serial result", i)
		}
	}

	// A second batch of the same queries must be answered from views the
	// first batch materialized (and still match).
	reps2, errs2 := batched.RunBatch(items)
	rewritten := 0
	for i := range ranges {
		if errs2[i] != nil {
			t.Fatalf("second batch item %d: %v", i, errs2[i])
		}
		if reps2[i].Result.Fingerprint() != want[i] {
			t.Errorf("second batch item %d: result differs from serial result", i)
		}
		if reps2[i].Rewritten {
			rewritten++
		}
	}
	if rewritten == 0 {
		t.Error("second batch reused no views")
	}
}

// TestRunBatchErrorAlignment: bad items fail individually, index-aligned,
// without poisoning their batch mates.
func TestRunBatchErrorAlignment(t *testing.T) {
	s := newSystem(t)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	items := []BatchItem{
		{Query: salesByCategory(0, 499)},
		{Query: nil},
		{Query: Scan("missing").Where("item", 0, 1)},
		{Ctx: canceled, Query: salesByCategory(0, 99)},
		{Query: salesByCategory(500, 999)},
	}
	reps, errs := s.RunBatch(items)
	if errs[0] != nil || errs[4] != nil {
		t.Fatalf("good items failed: %v / %v", errs[0], errs[4])
	}
	if len(reps[0].Rows()) == 0 || len(reps[4].Rows()) == 0 {
		t.Error("good items returned no rows")
	}
	if errs[1] == nil {
		t.Error("nil query did not fail")
	}
	if errs[2] == nil {
		t.Error("unknown table did not fail")
	}
	if !errors.Is(errs[3], context.Canceled) {
		t.Errorf("cancelled item: got %v, want context.Canceled", errs[3])
	}
}

// TestTemplateKey: queries differing only in range bounds share a
// template key; different shapes do not.
func TestTemplateKey(t *testing.T) {
	s := newSystem(t)
	a, err := s.TemplateKey(salesByCategory(0, 499))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.TemplateKey(salesByCategory(250, 750))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same template, different ranges: keys differ")
	}
	c, err := s.TemplateKey(Scan("sales").Where("item", 0, 499).
		GroupBy("item").Agg(Count("n")))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different shapes share a template key")
	}
	if _, err := s.TemplateKey(Scan("missing")); err == nil {
		t.Error("unknown table produced a template key")
	}
}

// TestHealthSnapshot: the operational snapshot reflects traffic, pool
// occupancy and cache counters.
func TestHealthSnapshot(t *testing.T) {
	s := newSystem(t, WithResultCache(64<<20), WithPoolLimit(1<<30))
	if h := s.Health(); h.Queries != 0 || h.InFlight != 0 {
		t.Fatalf("fresh system health: %+v", h)
	}
	if _, err := s.Run(salesByCategory(0, 499)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(salesByCategory(0, 499)); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.Queries != 2 {
		t.Errorf("Queries = %d, want 2", h.Queries)
	}
	if h.InFlight != 0 {
		t.Errorf("InFlight = %d, want 0", h.InFlight)
	}
	if h.PlanAcquisitions == 0 {
		t.Error("no planning-lock acquisitions recorded")
	}
	if h.PoolBytes != s.PoolBytes() {
		t.Errorf("PoolBytes = %d, want %d", h.PoolBytes, s.PoolBytes())
	}
	if h.PoolLimit != 1<<30 {
		t.Errorf("PoolLimit = %d, want %d", h.PoolLimit, int64(1<<30))
	}
	if h.CacheCapacity != 64<<20 {
		t.Errorf("CacheCapacity = %d, want %d", h.CacheCapacity, int64(64<<20))
	}
	if h.CacheHits == 0 {
		t.Error("identical repeat query did not hit the cache")
	}
	if h.StatsShards == 0 || h.StatsViews == 0 {
		t.Errorf("stats registry empty: %d views / %d shards", h.StatsViews, h.StatsShards)
	}

	// Degradation state surfaces: every stored read fails, so the second
	// query quarantines what the first materialized.
	f := newSystem(t, WithFaultInjection(FaultConfig{Seed: 7, StorageRead: 1}), WithFaultRetries(64))
	if _, err := f.Run(salesByCategory(0, 499)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(salesByCategory(0, 499)); err != nil {
		t.Fatal(err)
	}
	fh := f.Health()
	if len(fh.Quarantined) == 0 {
		t.Error("health reports no quarantined files after injected read faults")
	}
	if fh.FaultsInjected == 0 {
		t.Error("health reports no injected faults")
	}
}
