# Tier-1 verification plus the concurrency suite.

GO ?= go

.PHONY: all build test vet race bench verify lockcheck ci

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency suite: every package under the race detector,
# including the multi-goroutine ProcessQuery and determinism tests.
race:
	$(GO) test -race ./...

# Wall-clock speedup of the parallel data path (results stay identical).
bench:
	$(GO) test -bench BenchmarkParallelSpeedup -benchtime 1x -run '^$$' .

verify: build test vet race

# Lock-order assertions: the lockcheck build tag compiles runtime
# checking into the manager's lock hierarchy, so ordering violations
# panic in tests instead of deadlocking in production.
lockcheck:
	$(GO) test -tags lockcheck ./internal/lockcheck ./internal/core

# The CI pipeline. The GitHub Actions workflow runs the same script, so
# the local and hosted gates cannot drift apart.
ci:
	./scripts/ci.sh
