# Tier-1 verification plus the concurrency suite.

GO ?= go

.PHONY: all build test vet race bench verify ci

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency suite: every package under the race detector,
# including the multi-goroutine ProcessQuery and determinism tests.
race:
	$(GO) test -race ./...

# Wall-clock speedup of the parallel data path (results stay identical).
bench:
	$(GO) test -bench BenchmarkParallelSpeedup -benchtime 1x -run '^$$' .

verify: build test vet race

# What the GitHub Actions workflow runs: full build/vet/test plus the
# race detector on the packages with real concurrency (manager, engine,
# result cache). Mirrors .github/workflows/ci.yml — keep the two in sync.
ci: vet build test
	$(GO) test -race ./internal/core/ ./internal/engine/ ./internal/cache/
