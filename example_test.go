package deepsea_test

import (
	"fmt"

	"deepsea"
)

// Example demonstrates the materialize-then-reuse lifecycle: the first
// query pays for view creation, the second is answered from a fragment.
func Example() {
	sys := deepsea.New()
	sys.MustCreateTable(deepsea.TableDef{
		Name: "sales",
		Columns: []deepsea.ColumnDef{
			{Name: "item", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: 999, Width: 1 << 18},
			{Name: "amount", Kind: deepsea.Float, Width: 1 << 18},
			{Name: "details", Kind: deepsea.String, Width: 1 << 22},
		},
	})
	sys.MustCreateTable(deepsea.TableDef{
		Name: "product",
		Columns: []deepsea.ColumnDef{
			{Name: "p_item", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: 999, Width: 1 << 16},
			{Name: "p_category", Kind: deepsea.String, Width: 1 << 16},
		},
	})
	for i := 0; i < 2000; i++ {
		sys.MustInsert("sales", []any{int64(i % 1000), float64(i%10) + 0.5, ""})
	}
	cats := []string{"books", "music"}
	for i := 0; i < 1000; i++ {
		sys.MustInsert("product", []any{int64(i), cats[i%2]})
	}

	q := func(lo, hi int64) *deepsea.Query {
		return deepsea.Scan("sales").
			Join(deepsea.Scan("product"), "item", "p_item").
			Select("item", "p_category", "amount").
			Where("item", lo, hi).
			GroupBy("p_category").
			Agg(deepsea.Count("n"))
	}

	first, _ := sys.Run(q(100, 299))
	fmt.Println("first query rewritten:", first.Rewritten)
	second, _ := sys.Run(q(150, 249))
	fmt.Println("second query rewritten:", second.Rewritten)
	fmt.Println("second cheaper:", second.SimulatedSeconds() < first.SimulatedSeconds())
	// Output:
	// first query rewritten: false
	// second query rewritten: true
	// second cheaper: true
}

// ExampleSystem_Run shows reading result rows and columns.
func ExampleSystem_Run() {
	sys := deepsea.New()
	sys.MustCreateTable(deepsea.TableDef{
		Name: "t",
		Columns: []deepsea.ColumnDef{
			{Name: "k", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: 9},
			{Name: "v", Kind: deepsea.Float},
		},
	})
	sys.MustInsert("t", []any{int64(1), 2.5})
	sys.MustInsert("t", []any{int64(1), 1.5})
	sys.MustInsert("t", []any{int64(2), 4.0})

	rep, err := sys.Run(deepsea.Scan("t").Where("k", 0, 5).
		GroupBy("k").Agg(deepsea.Sum("v", "total")))
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Columns())
	for _, row := range rep.Rows() {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// [k total]
	// 1 4
	// 2 4
}

// ExampleWithPoolLimit shows a bounded pool evicting low-value entries.
func ExampleWithPoolLimit() {
	sys := deepsea.New(deepsea.WithPoolLimit(64 << 20))
	sys.MustCreateTable(deepsea.TableDef{
		Name: "t",
		Columns: []deepsea.ColumnDef{
			{Name: "k", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: 9},
			{Name: "v", Kind: deepsea.Float},
		},
	})
	sys.MustInsert("t", []any{int64(3), 1.0})
	rep, _ := sys.Run(deepsea.Scan("t").Where("k", 0, 5).GroupBy("k").Agg(deepsea.Count("n")))
	fmt.Println("within budget:", sys.PoolBytes() <= 64<<20)
	fmt.Println("rows:", len(rep.Rows()))
	// Output:
	// within budget: true
	// rows: 1
}
