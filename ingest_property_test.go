package deepsea_test

// Property tests for the batched append path: for EVERY workload
// template, delta-refresh after Append must produce results
// byte-identical to rematerializing from scratch — including deltas
// that are entirely filtered out by the view's selection range, appends
// that leave a template's delta empty (rows for an unrelated fact
// table), and deltas that land new join partners on the dimension side.
// The identity must hold regardless of which path the engine takes
// (incremental refresh, empty-delta fast path, or drop-and-recompute).

import (
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"deepsea"
	"deepsea/internal/workload"
)

var propData = workload.Generate(1, 1, nil)

// propFactOf maps a template to the fact table its selection ranges
// over — the table whose appends feed its delta.
func propFactOf(t workload.Template) string {
	switch t.SelectionAttr() {
	case "wcs_item_sk":
		return "web_clickstream"
	case "pr_item_sk":
		return "product_reviews"
	default:
		return "store_sales"
	}
}

// propOtherFact picks a fact table the template does not read.
func propOtherFact(t workload.Template) string {
	if propFactOf(t) == "product_reviews" {
		return "store_sales"
	}
	return "product_reviews"
}

// propCanon renders a report order-insensitively.
func propCanon(t *testing.T, rep deepsea.Report) string {
	t.Helper()
	lines := make([]string, 0, len(rep.Rows()))
	for _, row := range rep.Rows() {
		b, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	return strings.Join(rep.Columns(), ",") + "\n" + strings.Join(lines, "\n")
}

// propFactRow builds one deterministic valid row for a fact table with
// the given item key.
func propFactRow(fact string, key int64, i int) []any {
	switch fact {
	case "web_clickstream":
		return []any{key, int64(i % 200), int64(i % 3651), ""}
	case "product_reviews":
		return []any{key, int64(i % 200), float64(i%41)/10 + 1, ""}
	default:
		return []any{key, int64(i % 200), int64(i % 20), int64(i%20 + 1),
			float64(i%50000) / 100, int64(i % 3651), ""}
	}
}

// propCheck applies the same appends to a warmed system (views
// materialized, refreshed incrementally) and to a cold reference
// (views never built — every answer recomputed from the appended base)
// and demands identical bytes for the template's query.
func propCheck(t *testing.T, tpl workload.Template, lo, hi int64, appends []workload.TraceAppend) {
	t.Helper()
	q := workload.BuildQuery(tpl, lo, hi)

	warm := deepsea.New(deepsea.WithPoolLimit(1 << 30))
	if err := workload.Load(warm, propData); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		if _, err := warm.Run(q); err != nil {
			t.Fatal(err)
		}
	}

	cold := deepsea.New(deepsea.WithoutMaterialization())
	if err := workload.Load(cold, propData); err != nil {
		t.Fatal(err)
	}

	for _, b := range appends {
		if _, err := warm.Append(b.Table, b.Rows); err != nil {
			t.Fatalf("warm append %s: %v", b.Table, err)
		}
		if _, err := cold.Append(b.Table, b.Rows); err != nil {
			t.Fatalf("cold append %s: %v", b.Table, err)
		}
	}

	warmRep, err := warm.Run(q)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	coldRep, err := cold.Run(q)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if got, want := propCanon(t, warmRep), propCanon(t, coldRep); got != want {
		t.Errorf("delta-refreshed result differs from scratch rematerialization\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestDeltaRefreshEqualsRematAllTemplates is the headline property over
// a spread delta: held-out rows across the whole domain, so every
// template's filter/project/join/aggregate shape sees a non-trivial
// delta.
func TestDeltaRefreshEqualsRematAllTemplates(t *testing.T) {
	for _, tpl := range workload.AllTemplates {
		t.Run(tpl.String(), func(t *testing.T) {
			fact := propFactOf(tpl)
			appends := []workload.TraceAppend{
				{Table: fact, Rows: propData.AppendRows(fact, 60, 11, nil)},
				{Table: fact, Rows: propData.AppendRows(fact, 40, 12, nil)},
			}
			propCheck(t, tpl, workload.ItemSkLo, workload.ItemSkHi, appends)
		})
	}
}

// TestDeltaRefreshAllRowsFiltered appends rows whose keys all fall
// outside the view's selection range: the per-view delta survives the
// base-table filter with zero rows, and the refreshed view must still
// answer identically to scratch.
func TestDeltaRefreshAllRowsFiltered(t *testing.T) {
	// ItemKeys are evenly spread; restrict the sampler to keys above
	// 300000 while the probed view covers [100000, 200000].
	n := len(propData.ItemKeys)
	cut := sort.Search(n, func(i int) bool { return propData.ItemKeys[i] > 300000 })
	outside := func(rng *rand.Rand, n int) int { return cut + rng.Intn(n-cut) }
	for _, tpl := range workload.AllTemplates {
		t.Run(tpl.String(), func(t *testing.T) {
			fact := propFactOf(tpl)
			appends := []workload.TraceAppend{
				{Table: fact, Rows: propData.AppendRows(fact, 50, 21, outside)},
			}
			propCheck(t, tpl, 100000, 200000, appends)
		})
	}
}

// TestDeltaRefreshEmptyDelta appends rows to a fact table the template
// never reads: its views are untouched by the marking pass, and the
// result must equal both the scratch answer and the pre-append answer.
func TestDeltaRefreshEmptyDelta(t *testing.T) {
	for _, tpl := range workload.AllTemplates {
		t.Run(tpl.String(), func(t *testing.T) {
			other := propOtherFact(tpl)
			q := workload.BuildQuery(tpl, workload.ItemSkLo, workload.ItemSkHi)
			warm := deepsea.New(deepsea.WithPoolLimit(1 << 30))
			if err := workload.Load(warm, propData); err != nil {
				t.Fatal(err)
			}
			var before string
			for round := 0; round < 2; round++ {
				rep, err := warm.Run(q)
				if err != nil {
					t.Fatal(err)
				}
				before = propCanon(t, rep)
			}
			if _, err := warm.Append(other, propData.AppendRows(other, 40, 31, nil)); err != nil {
				t.Fatal(err)
			}
			rep, err := warm.Run(q)
			if err != nil {
				t.Fatal(err)
			}
			if got := propCanon(t, rep); got != before {
				t.Errorf("append to unrelated table %s changed the result", other)
			}
		})
	}
}

// TestDeltaRefreshNewJoinPartners appends new dimension rows (item keys
// that did not exist) plus fact rows referencing them: the delta-join
// must pick up the new partners on both sides.
func TestDeltaRefreshNewJoinPartners(t *testing.T) {
	for _, tpl := range workload.AllTemplates {
		t.Run(tpl.String(), func(t *testing.T) {
			fact := propFactOf(tpl)
			// ItemKeys are multiples of the domain step; odd keys are new.
			newKeys := []int64{100001, 200003, 300005}
			items := make([][]any, len(newKeys))
			for i, k := range newKeys {
				items[i] = []any{k, int64(i % 10), "books", 19.99, ""}
			}
			factRows := make([][]any, 0, 3*len(newKeys))
			for i, k := range newKeys {
				for j := 0; j < 3; j++ {
					factRows = append(factRows, propFactRow(fact, k, 3*i+j))
				}
			}
			appends := []workload.TraceAppend{
				{Table: "item", Rows: items},
				{Table: fact, Rows: factRows},
			}
			propCheck(t, tpl, workload.ItemSkLo, workload.ItemSkHi, appends)
		})
	}
}
