// Command deepsea-serve exposes a DeepSea instance over HTTP: it loads
// the deterministic BigBench-derived dataset, then serves queries with
// admission control, template-batched planning, and an operational
// health surface until SIGINT/SIGTERM triggers a graceful drain.
//
// Usage:
//
//	deepsea-serve -addr :8080 -gb 10 -pool 1GB -cache 256MB
//
// Endpoints:
//
//	POST /query   — run one query; body example:
//	                {"template": "Q1", "lo": 0, "hi": 4000}
//	GET  /healthz — liveness + degradation summary
//	GET  /statz   — full operational snapshot
//	GET  /poolz   — materialized-pool contents
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"deepsea"
	"deepsea/internal/server"
	"deepsea/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	gb := flag.Int64("gb", 1, "modelled instance size in GB")
	seed := flag.Int64("seed", 1, "dataset seed")
	pool := flag.String("pool", "", "view-pool size limit, e.g. 1GB (empty = unlimited)")
	cache := flag.String("cache", "", "result-cache size, e.g. 256MB (empty = off)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	maxQueue := flag.Int("queue", 0, "admission queue length (0 = 4x max-inflight)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "max wait for an execution slot")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max graceful-shutdown wait")
	batchMax := flag.Int("batch-max", 0, "max queries per planning batch (0 = unbounded)")
	batchLinger := flag.Duration("batch-linger", 0, "wait for same-template requests to join a planning batch (0 = off)")
	maintWorkers := flag.Int("maint-workers", 0, "background maintenance workers: materializations, splits and merges leave the query path (0 = inline maintenance)")
	maintQueue := flag.Int("maint-queue", 0, "background maintenance queue capacity (0 = default 1024; only with -maint-workers)")
	journal := flag.String("journal", "", "durable-state directory: journal pool mutations there and warm-restart from it (empty = in-memory only)")
	snapshotEvery := flag.Duration("snapshot-every", time.Minute, "periodic checkpoint interval when -journal is set (0 = only on drain)")
	flag.Parse()

	var opts []deepsea.Option
	if *pool != "" {
		smax, err := parseBytes(*pool)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts = append(opts, deepsea.WithPoolLimit(smax))
	}
	if *cache != "" {
		cb, err := parseBytes(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts = append(opts, deepsea.WithResultCache(cb))
	}

	if *maintWorkers > 0 {
		opts = append(opts, deepsea.WithBackgroundMaintenance(*maintWorkers, *maintQueue))
	}

	var store deepsea.Datastore
	if *journal != "" {
		var err error
		store, err = deepsea.OpenJournal(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts = append(opts, deepsea.WithDatastore(store))
	}

	fmt.Printf("loading %d GB modelled instance (seed %d)...\n", *gb, *seed)
	sys := deepsea.New(opts...)
	if rec := sys.Recovery(); rec.Ran {
		switch {
		case rec.Err != "":
			fmt.Fprintf(os.Stderr, "recovery failed, starting cold: %s\n", rec.Err)
		case rec.FromSnapshot || rec.Replayed > 0:
			fmt.Printf("recovered from %s: snapshot=%v, %d journal records replayed (%d skipped)\n",
				*journal, rec.FromSnapshot, rec.Replayed, rec.Skipped)
		}
	}
	if err := workload.Load(sys, workload.Generate(*gb, *seed, nil)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	scfg := server.Config{
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		QueueTimeout: *queueTimeout,
		BatchMax:     *batchMax,
		BatchLinger:  *batchLinger,
	}
	if store != nil {
		scfg.SnapshotEvery = *snapshotEvery
	}
	srv := server.New(sys, scfg)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := server.SignalContext(context.Background())
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("serving on %s\n", *addr)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting queries and drain in-flight ones first, then close
	// the listener; a second signal kills the process the default way.
	err := srv.Shutdown(dctx)
	if herr := hs.Shutdown(dctx); err == nil {
		err = herr
	}
	if store != nil {
		if cerr := store.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("drained cleanly")
}

func parseBytes(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult = 1 << 30
		s = strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "MB")
	}
	n, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(n * float64(mult)), nil
}
