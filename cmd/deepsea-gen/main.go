// Command deepsea-gen emits the synthetic inputs of the evaluation as
// JSON for inspection or external tooling: the SDSS-style query trace,
// its access histogram, selectivity/skew range sequences, and dataset
// summaries.
//
// Usage:
//
//	deepsea-gen -what trace -n 1000
//	deepsea-gen -what histogram -bins 42
//	deepsea-gen -what ranges -n 50 -selectivity 0.05 -skew L
//	deepsea-gen -what dataset -gb 100
//	deepsea-gen -what appendstream -table store_sales -n 20 -batch 64
//
// appendstream emits JSONL (one ingest batch per line) of held-out rows
// for one fact table — pipe each line to POST /append on a serving or
// coordinator tier to replay an ingest workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"deepsea/internal/ingest"
	"deepsea/internal/sdss"
	"deepsea/internal/workload"
)

type rangeJSON struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

func main() {
	what := flag.String("what", "trace", "trace | histogram | ranges | dataset | appendstream")
	n := flag.Int("n", 1000, "number of queries/ranges/append batches")
	bins := flag.Int("bins", 42, "histogram bins")
	gb := flag.Int64("gb", 100, "dataset size in GB")
	table := flag.String("table", "store_sales", "fact table for -what appendstream")
	batch := flag.Int("batch", 64, "rows per append batch for -what appendstream")
	selectivity := flag.Float64("selectivity", 0.01, "range width as a domain fraction")
	skewFlag := flag.String("skew", "H", "U | L | H")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	switch *what {
	case "trace":
		trace := sdss.Trace(sdss.TraceOptions{N: *n, Seed: *seed})
		out := make([]rangeJSON, len(trace))
		for i, iv := range trace {
			out[i] = rangeJSON{Lo: iv.Lo, Hi: iv.Hi}
		}
		check(enc.Encode(out))

	case "histogram":
		trace := sdss.Trace(sdss.TraceOptions{N: *n, Seed: *seed})
		h := sdss.HitHistogram(trace, *bins)
		type bin struct {
			LoDeg float64 `json:"lo_deg"`
			HiDeg float64 `json:"hi_deg"`
			Hits  float64 `json:"hits"`
		}
		out := make([]bin, h.Bins())
		for i := range out {
			iv := h.BinInterval(i)
			out[i] = bin{
				LoDeg: float64(iv.Lo) / sdss.RAScale,
				HiDeg: float64(iv.Hi+1) / sdss.RAScale,
				Hits:  h.Counts[i],
			}
		}
		check(enc.Encode(out))

	case "ranges":
		var skew workload.Skew
		switch strings.ToUpper(*skewFlag) {
		case "U":
			skew = workload.Uniform
		case "L":
			skew = workload.Light
		case "H":
			skew = workload.Heavy
		default:
			fmt.Fprintf(os.Stderr, "unknown -skew %q\n", *skewFlag)
			os.Exit(2)
		}
		rng := rand.New(rand.NewSource(*seed))
		ranges := workload.Ranges(*n, *selectivity, skew, workload.ItemSkDomain(), rng)
		out := make([]rangeJSON, len(ranges))
		for i, iv := range ranges {
			out[i] = rangeJSON{Lo: iv.Lo, Hi: iv.Hi}
		}
		check(enc.Encode(out))

	case "dataset":
		data := workload.Generate(*gb, *seed, nil)
		type table struct {
			Name string `json:"name"`
			Rows int    `json:"rows"`
			GB   string `json:"modelled_size"`
		}
		var out []table
		for name, t := range data.Tables {
			out = append(out, table{
				Name: name,
				Rows: t.NumRows(),
				GB:   fmt.Sprintf("%.1f GB", float64(t.Bytes())/(1<<30)),
			})
		}
		check(enc.Encode(out))

	case "appendstream":
		data := workload.Generate(*gb, *seed, nil)
		batches := workload.AppendTrace(data, *table, *n, *batch, *seed)
		specs := make([]*ingest.Spec, len(batches))
		for i, b := range batches {
			specs[i] = &ingest.Spec{Table: b.Table, Rows: b.Rows}
		}
		check(ingest.WriteStream(os.Stdout, specs))

	default:
		fmt.Fprintf(os.Stderr, "unknown -what %q\n", *what)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
