// Command deepsea-shard fronts a range-sharded DeepSea cluster with a
// scatter-gather coordinator. Two modes:
//
// Self-contained — boot N in-process shard servers (each a full System
// over the same deterministic dataset) and coordinate across them:
//
//	deepsea-shard -shards 3 -addr :8080 -gb 10
//
// External — coordinate already-running deepsea-serve instances:
//
//	deepsea-shard -shard-addrs http://h1:8081,http://h2:8082 -addr :8080
//
// The coordinator splits the item_sk domain [-lo, -hi] evenly at boot,
// pushes each shard its range (a fenced /admin/range handoff), routes
// single-range queries to the owning shard, scatters spanning queries
// in partial-aggregate mode and merges the results deterministically.
// With -rebalance-every it periodically moves hot range boundaries to
// equalize observed heat.
//
// Endpoints:
//
//	POST /query           — run one query (same body as deepsea-serve)
//	GET  /healthz         — routing table + per-shard reachability
//	GET  /statz           — scatter counters + per-shard heat share
//	POST /admin/rebalance — recompute and apply equi-heat boundaries
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"deepsea"
	"deepsea/internal/server"
	"deepsea/internal/shard"
	"deepsea/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "coordinator listen address")
	shards := flag.Int("shards", 0, "boot this many in-process shard servers (self-contained mode)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated shard base URLs (external mode)")
	basePort := flag.Int("base-port", 8081, "first port for in-process shards (self-contained mode)")
	lo := flag.Int64("lo", workload.ItemSkLo, "partition-key domain low bound")
	hi := flag.Int64("hi", workload.ItemSkHi, "partition-key domain high bound")
	gb := flag.Int64("gb", 1, "modelled instance size per in-process shard")
	seed := flag.Int64("seed", 1, "dataset seed for in-process shards")
	rebalanceEvery := flag.Duration("rebalance-every", 0, "periodic equi-heat rebalance interval (0 = manual via /admin/rebalance)")
	reqTimeout := flag.Duration("shard-timeout", 15*time.Second, "per-shard request timeout")
	flag.Parse()

	var addrs []string
	var inner []*http.Server
	switch {
	case *shardAddrs != "":
		for _, a := range strings.Split(*shardAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	case *shards > 0:
		fmt.Printf("booting %d in-process shards (%d GB each, seed %d)...\n", *shards, *gb, *seed)
		data := workload.Generate(*gb, *seed, nil)
		for i := 0; i < *shards; i++ {
			sys := deepsea.New()
			if err := workload.Load(sys, data); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			srv := server.New(sys, server.Config{})
			hs := &http.Server{
				Addr:    fmt.Sprintf("127.0.0.1:%d", *basePort+i),
				Handler: srv.Handler(),
			}
			go func() {
				if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}()
			inner = append(inner, hs)
			addrs = append(addrs, "http://"+hs.Addr)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -shards N or -shard-addrs")
		os.Exit(2)
	}

	coord, err := shard.New(shard.Config{
		Addrs:          addrs,
		DomainLo:       *lo,
		DomainHi:       *hi,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The shards must be reachable before the initial range push; retry
	// briefly so external shards still starting up don't fail the boot.
	var initErr error
	for attempt := 0; attempt < 20; attempt++ {
		if initErr = coord.Init(); initErr == nil {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if initErr != nil {
		fmt.Fprintf(os.Stderr, "initial range assignment failed: %v\n", initErr)
		os.Exit(1)
	}
	for _, sh := range coord.Shards() {
		fmt.Printf("shard %s owns [%d,%d] (epoch %d)\n", sh.Addr, sh.Lo, sh.Hi, sh.Epoch)
	}

	stopRebalance := make(chan struct{})
	if *rebalanceEvery > 0 {
		go func() {
			t := time.NewTicker(*rebalanceEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if moved, err := coord.Rebalance(); err != nil {
						fmt.Fprintf(os.Stderr, "rebalance: %v\n", err)
					} else if moved {
						for _, sh := range coord.Shards() {
							fmt.Printf("rebalanced: %s owns [%d,%d] (epoch %d)\n",
								sh.Addr, sh.Lo, sh.Hi, sh.Epoch)
						}
					}
				case <-stopRebalance:
					return
				}
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: coord.Handler()}
	ctx, stop := server.SignalContext(context.Background())
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("coordinating %d shards on %s\n", len(addrs), *addr)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	close(stopRebalance)
	dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err = hs.Shutdown(dctx)
	for _, s := range inner {
		if serr := s.Shutdown(dctx); err == nil {
			err = serr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("drained cleanly")
}
