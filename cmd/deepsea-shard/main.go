// Command deepsea-shard fronts a range-sharded DeepSea cluster with a
// scatter-gather coordinator. Two modes:
//
// Self-contained — boot N in-process shard servers (each a full System
// over the same deterministic dataset) and coordinate across them,
// optionally R replicas per range:
//
//	deepsea-shard -shards 3 -replicas 2 -addr :8080 -gb 10
//
// External — coordinate already-running deepsea-serve instances.
// Commas separate replica groups; '|' separates replicas inside a
// group (quote the argument — '|' is a shell pipe):
//
//	deepsea-shard -shard-addrs 'http://h1:8081|http://h1b:9081,http://h2:8082|http://h2b:9082' -addr :8080
//
// The coordinator splits the item_sk domain [-lo, -hi] evenly at boot,
// pushes each replica group its range (a fenced /admin/range handoff —
// the first replica of a group is its primary), routes single-range
// queries to the owning group, scatters spanning queries in
// partial-aggregate mode and merges the results deterministically.
// Replicated groups route around failure: bounded failover with
// jittered backoff, per-replica circuit breakers, hedged subqueries
// after -hedge-delay (0 derives the delay from the observed p95;
// negative disables hedging), and a background health prober
// (-probe-every) that re-pushes ownership to replicas that missed a
// handoff. With -rebalance-every it periodically moves hot range
// boundaries to equalize observed heat.
//
// Endpoints:
//
//	POST /query           — run one query (same body as deepsea-serve)
//	POST /append          — append rows to a base table: keyed tables
//	                        split per owning range group (every replica
//	                        must accept), keyless tables broadcast
//	GET  /healthz         — routing table + per-replica reachability and breaker state
//	GET  /statz           — scatter/failover/hedge/breaker counters + per-shard heat share
//	POST /admin/rebalance — recompute and apply equi-heat boundaries
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"deepsea"
	"deepsea/internal/server"
	"deepsea/internal/shard"
	"deepsea/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "coordinator listen address")
	shards := flag.Int("shards", 0, "boot this many in-process shard groups (self-contained mode)")
	replicas := flag.Int("replicas", 1, "replicas per range group (self-contained mode)")
	shardAddrs := flag.String("shard-addrs", "", "shard base URLs (external mode): ',' between groups, '|' between a group's replicas")
	basePort := flag.Int("base-port", 8081, "first port for in-process shards (self-contained mode)")
	lo := flag.Int64("lo", workload.ItemSkLo, "partition-key domain low bound")
	hi := flag.Int64("hi", workload.ItemSkHi, "partition-key domain high bound")
	gb := flag.Int64("gb", 1, "modelled instance size per in-process shard")
	seed := flag.Int64("seed", 1, "dataset seed for in-process shards")
	rebalanceEvery := flag.Duration("rebalance-every", 0, "periodic equi-heat rebalance interval (0 = manual via /admin/rebalance)")
	reqTimeout := flag.Duration("shard-timeout", 15*time.Second, "per-shard request timeout")
	hedgeDelay := flag.Duration("hedge-delay", 0, "hedged-subquery delay (0 = derive from observed p95, negative = disable hedging)")
	probeEvery := flag.Duration("probe-every", 2*time.Second, "background replica health-probe interval (0 = off)")
	flag.Parse()

	var groups [][]string
	var inner []*http.Server
	var keyIdx map[string]int
	switch {
	case *shardAddrs != "":
		for _, g := range strings.Split(*shardAddrs, ",") {
			var group []string
			for _, a := range strings.Split(g, "|") {
				if a = strings.TrimSpace(a); a != "" {
					group = append(group, a)
				}
			}
			if len(group) > 0 {
				groups = append(groups, group)
			}
		}
		// The key map is schema-derived and identical at any instance
		// size, so a minimal dataset supplies it for external shards.
		keyIdx = workload.Generate(1, *seed, nil).KeyIndexes()
	case *shards > 0:
		if *replicas < 1 {
			*replicas = 1
		}
		fmt.Printf("booting %d shard groups × %d replicas (%d GB each, seed %d)...\n",
			*shards, *replicas, *gb, *seed)
		data := workload.Generate(*gb, *seed, nil)
		keyIdx = data.KeyIndexes()
		port := *basePort
		for i := 0; i < *shards; i++ {
			var group []string
			for j := 0; j < *replicas; j++ {
				sys := deepsea.New()
				if err := workload.Load(sys, data); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				srv := server.New(sys, server.Config{})
				hs := &http.Server{
					Addr:    fmt.Sprintf("127.0.0.1:%d", port),
					Handler: srv.Handler(),
				}
				port++
				go func() {
					if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
				}()
				inner = append(inner, hs)
				group = append(group, "http://"+hs.Addr)
			}
			groups = append(groups, group)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -shards N or -shard-addrs")
		os.Exit(2)
	}

	coord, err := shard.New(shard.Config{
		Groups:         groups,
		DomainLo:       *lo,
		DomainHi:       *hi,
		RequestTimeout: *reqTimeout,
		HedgeDelay:     *hedgeDelay,
		ProbeInterval:  *probeEvery,
		KeyIndex:       keyIdx,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer coord.Close()

	ctx, stop := server.SignalContext(context.Background())
	defer stop()

	// The shards must be reachable before the initial range push; retry
	// briefly so external shards still starting up don't fail the boot.
	var initErr error
	for attempt := 0; attempt < 20; attempt++ {
		if initErr = coord.Init(ctx); initErr == nil {
			break
		}
		if ctx.Err() != nil {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if initErr != nil {
		fmt.Fprintf(os.Stderr, "initial range assignment failed: %v\n", initErr)
		os.Exit(1)
	}
	for _, sh := range coord.Shards() {
		fmt.Printf("group %s owns [%d,%d] (epoch %d, replicas %s)\n",
			sh.Addr, sh.Lo, sh.Hi, sh.Epoch, strings.Join(sh.Replicas, " "))
	}

	stopRebalance := make(chan struct{})
	if *rebalanceEvery > 0 {
		go func() {
			t := time.NewTicker(*rebalanceEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if moved, err := coord.Rebalance(ctx); err != nil {
						fmt.Fprintf(os.Stderr, "rebalance: %v\n", err)
					} else if moved {
						for _, sh := range coord.Shards() {
							fmt.Printf("rebalanced: %s owns [%d,%d] (epoch %d)\n",
								sh.Addr, sh.Lo, sh.Hi, sh.Epoch)
						}
					}
				case <-stopRebalance:
					return
				}
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("coordinating %d shard groups on %s\n", len(groups), *addr)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	close(stopRebalance)
	coord.Close()
	dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err = hs.Shutdown(dctx)
	for _, s := range inner {
		if serr := s.Shutdown(dctx); err == nil {
			err = serr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("drained cleanly")
}
