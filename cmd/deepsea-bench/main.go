// Command deepsea-bench regenerates the tables and figures of the
// DeepSea paper's evaluation (Section 10).
//
// Usage:
//
//	deepsea-bench -experiment all                # every experiment, CI scale
//	deepsea-bench -experiment fig5a -params full # one experiment, paper scale
//	deepsea-bench -list                          # enumerate experiment ids
//
// Paper scale runs the published instance sizes and query counts
// (hundreds of GB modelled, 1000-query workloads) and takes a few
// minutes; short scale shrinks both ~5x while preserving result shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"deepsea/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (see -list) or \"all\"")
	params := flag.String("params", "short", "\"short\" (CI scale) or \"full\" (paper scale)")
	seed := flag.Int64("seed", 1, "random seed for data and workload generation")
	parallelism := flag.Int("parallelism", 0, "engine data-path workers (0 = GOMAXPROCS, 1 = sequential); results are identical for every setting")
	jsonOut := flag.Bool("json", false, "additionally write each experiment's report to BENCH_<id>.json (wall-clock, speedup, cache hit rate)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile of the whole run to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		defer func() {
			f, err := os.Create(*mutexProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			_ = pprof.Lookup("mutex").WriteTo(f, 0)
		}()
	}

	bench.SetDefaultParallelism(*parallelism)

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var p bench.Params
	switch *params {
	case "short":
		p = bench.Short()
	case "full":
		p = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown -params %q (want short or full)\n", *params)
		os.Exit(2)
	}
	p.Seed = *seed

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = ids[:0]
		for _, e := range bench.Experiments {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		if *jsonOut {
			path, res, err := bench.RunJSON("", id, p)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			e, _ := bench.Lookup(id)
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			res.Print(os.Stdout)
			fmt.Printf("report written to %s\n\n", path)
		} else if err := bench.RunAndPrint(os.Stdout, id, p); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
