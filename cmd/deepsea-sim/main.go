// Command deepsea-sim runs a synthetic workload through a chosen
// strategy and prints a per-query trace: how each query was answered,
// what was materialized, and what was evicted. It is the quickest way to
// watch DeepSea's progressive partitioning in action.
//
// Usage:
//
//	deepsea-sim -strategy DS -queries 30 -selectivity 0.01 -skew H
//	deepsea-sim -strategy E-15 -gb 100 -pool 10GB -template Q5
//
// Strategies: H (vanilla), NP, DS (default), DS-H (horizontal), NR,
// E-<k> (equi-depth), N (Nectar selection), N+ (Nectar+).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"deepsea/internal/bench"
	"deepsea/internal/core"
	"deepsea/internal/server"
	"deepsea/internal/workload"
)

func main() {
	strategy := flag.String("strategy", "DS", "H | NP | DS | DS-H | NR | E-<k> | N | N+")
	gb := flag.Int64("gb", 100, "modelled instance size in GB")
	nq := flag.Int("queries", 30, "number of queries")
	selectivity := flag.Float64("selectivity", 0.01, "selection range as a fraction of the item_sk domain")
	skewFlag := flag.String("skew", "H", "U (uniform) | L (light) | H (heavy) midpoint skew")
	template := flag.String("template", "Q30", "query template (Q1,Q5,Q7,Q9,Q12,Q16,Q20,Q26,Q29,Q30)")
	pool := flag.String("pool", "", "pool size limit, e.g. 10GB (empty = unlimited)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *pool != "" {
		smax, err := parseBytes(*pool)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Smax = smax
	}

	var skew workload.Skew
	switch strings.ToUpper(*skewFlag) {
	case "U":
		skew = workload.Uniform
	case "L":
		skew = workload.Light
	case "H":
		skew = workload.Heavy
	default:
		fmt.Fprintf(os.Stderr, "unknown -skew %q\n", *skewFlag)
		os.Exit(2)
	}
	tpl, err := parseTemplate(*template)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancels the context: the in-flight query unwinds
	// promptly (locks released, pins dropped) and the partial summary
	// still prints.
	ctx, stop := server.SignalContext(context.Background())
	defer stop()

	fmt.Printf("generating %d GB instance...\n", *gb)
	data := workload.Generate(*gb, *seed, nil)
	rng := rand.New(rand.NewSource(*seed + 1))
	ranges := workload.Ranges(*nq, *selectivity, skew, workload.ItemSkDomain(), rng)

	d := core.New(cfg)
	for _, t := range data.Tables {
		d.AddBaseTable(t)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\trange\tsim s\tanswered from\tfrags\tgaps\tmaterialized\tevicted\tpool")
	var total float64
	interrupted := false
	ran := 0
	for i, iv := range ranges {
		rep, err := d.ProcessQueryContext(ctx, data.Query(tpl, iv))
		if errors.Is(err, context.Canceled) {
			interrupted = true
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ran++
		total += rep.TotalSeconds
		src := "base tables"
		if rep.Rewritten {
			src = "view"
		}
		fmt.Fprintf(tw, "%s_%d\t%s\t%.1f\t%s\t%d\t%d\t%dv+%df\t%d\t%s\n",
			tpl, i+1, iv, rep.TotalSeconds, src,
			rep.FragmentsRead, rep.RemainderGaps,
			len(rep.MaterializedViews), len(rep.MaterializedFrags),
			len(rep.Evicted), fmtBytes(d.Pool.TotalSize()))
	}
	tw.Flush()
	if interrupted {
		fmt.Printf("\ninterrupted: total simulated time %.0f s over %d of %d queries (strategy %s)\n",
			total, ran, *nq, *strategy)
		os.Exit(130)
	}
	fmt.Printf("\ntotal simulated time: %.0f s over %d queries (strategy %s)\n", total, *nq, *strategy)
}

func parseStrategy(s string) (core.Config, error) {
	switch strings.ToUpper(s) {
	case "H":
		return bench.HiveCfg(), nil
	case "NP":
		return bench.NPCfg(), nil
	case "DS":
		return bench.DSCfg(), nil
	case "DS-H":
		return bench.DSHorizontalCfg(), nil
	case "NR":
		return bench.NRCfg(), nil
	case "N":
		return bench.NectarCfg(), nil
	case "N+":
		return bench.NectarPlusCfg(), nil
	}
	if k, ok := strings.CutPrefix(strings.ToUpper(s), "E-"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n < 1 {
			return core.Config{}, fmt.Errorf("bad equi-depth strategy %q", s)
		}
		return bench.EquiDepthCfg(n), nil
	}
	return core.Config{}, fmt.Errorf("unknown strategy %q", s)
}

func parseTemplate(s string) (workload.Template, error) {
	for _, t := range workload.AllTemplates {
		if strings.EqualFold(t.String(), s) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown template %q", s)
}

func parseBytes(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult = 1 << 30
		s = strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "MB")
	}
	n, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(n * float64(mult)), nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
