// Command benchcheck gates CI on the machine-readable bench reports:
// it reads BENCH_<id>.json files (written by deepsea-bench -json) and
// fails when a quality floor regresses. Only host-independent
// properties are gated — determinism ("identical"), cache hit rate,
// pool mutation counts; wall-clock speedups vary with the runner's
// core count and are reported but never enforced. (Gates like
// "scaling_ok" stay host-independent by auto-passing on hosts that
// cannot physically exhibit the speedup.)
//
// Usage:
//
//	benchcheck BENCH_<id>.json ...   gate the given reports
//	benchcheck -list                 print every gated experiment and its floors
//	benchcheck -preflight            fail if a registered *speed experiment has no floors
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"deepsea/internal/bench"
)

// report mirrors the fields of bench.Report that the gate reads.
type report struct {
	Experiment string             `json:"experiment"`
	Metrics    map[string]float64 `json:"metrics"`
}

// floor is one gated metric: the report fails if the metric is missing
// or below Min.
type floor struct {
	metric string
	min    float64
}

// floors lists the gated metrics per experiment. Experiments without an
// entry pass with a note — new experiments opt in here. The -preflight
// mode enforces that every registered *speed experiment HAS opted in,
// so a new perf experiment cannot silently ship ungated.
var floors = map[string][]floor{
	"cachespeed": {
		{"identical", 1},        // cached answers byte-identical to computed
		{"cache_hit_rate", 0.5}, // repetitive workload must actually hit
	},
	"lockspeed": {
		{"identical", 1}, // striped execution byte-identical to serial
		{"mutations", 1}, // the workload must exercise pool maintenance
	},
	"parspeed": {
		{"identical", 1}, // parallel data path byte-identical to serial
	},
	"faultspeed": {
		{"identical", 1},   // zero-rate injector changes nothing
		{"overhead_ok", 1}, // armed-at-zero checks stay within 1% / 50ms
	},
	"servespeed": {
		{"identical", 1},            // concurrent serving matches the serial reference
		{"no_shed_below_limit", 1},  // clients == slots must never be shed
		{"sheds_under_overload", 1}, // overload must shed, not queue unboundedly
		{"coalesced", 1},            // same-template burst: acquisitions < requests
		{"plan_amortization", 1},    // and never worse than one acquisition per query
		{"p99_ok", 1},               // p99 within max(1s, 50x p50) — host-tolerant
	},
	"maintspeed": {
		{"identical", 1},     // background results byte-identical to inline
		{"p99_improves", 1},  // simulated p99 drops when queries stop paying maintenance
		{"converges", 1},     // drained pool matches the inline fragment set exactly
		{"no_lost_tasks", 1}, // enqueued == completed + failed + deduped + dropped after drain
	},
	"persistspeed": {
		{"identical", 1},           // journaled arm byte-identical to volatile
		{"overhead_ok", 1},         // journal hot-path cost within 1.5x + 250ms slack
		{"recovery_ok", 1},         // crash recovery ran and reported no error
		{"recovered_identical", 1}, // post-restart answers byte-identical
		{"warm_hit_ok", 1},         // first post-restart issues answered from recovered views
	},
	"shardspeed": {
		{"identical_across_shard_counts", 1}, // merged results byte-identical for k in {1,2,3}
		{"scaling_ok", 1},                    // >= 1.6x at 3 shards on a disjoint trace (host-guarded)
		{"skew_bounded", 1},                  // hotspot p99 within 2x of uniform after one rebalance
	},
	"failspeed": {
		{"identical_with_replica_down", 1}, // replica killed mid-burst, results byte-identical
		{"zero_client_failures", 1},        // every query answered despite the kill, failover exercised
		{"hedge_p99_improves", 1},          // hedged p99 beats unhedged under injected straggler latency
		{"breaker_bounded", 1},             // breaker trips and post-trip p99 sits 10x under the timeout
	},
	"ingestspeed": {
		{"identical_vs_remat", 1},            // incremental refresh byte-identical to remat-on-append, all templates
		{"identical_across_shard_counts", 1}, // same appends through 1- and 2-group clusters, identical bytes
		{"no_drops", 1},                      // every delta applied incrementally (refreshes > 0, drops == 0)
		{"sublinear_ok", 1},                  // steady-state refresh cost <= 2x on a ~4x base
		{"read_p99_bounded", 1},              // mixed-trace read p99 within max(1s, 8x read-only p99)
		{"zero_append_failures", 1},          // every append during the mixed run returned 200
	},
}

func check(path string) (failures []string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	gates, ok := floors[rep.Experiment]
	if !ok {
		fmt.Printf("note: %s: no gates registered for experiment %q\n", path, rep.Experiment)
		return nil, nil
	}
	for _, f := range gates {
		v, ok := rep.Metrics[f.metric]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: metric %q missing", rep.Experiment, f.metric))
		case v < f.min:
			failures = append(failures, fmt.Sprintf("%s: %s = %g, floor %g", rep.Experiment, f.metric, v, f.min))
		default:
			fmt.Printf("ok: %s: %s = %g (floor %g)\n", rep.Experiment, f.metric, v, f.min)
		}
	}
	return failures, nil
}

// list prints every registered experiment with its floors (or a
// "no floors" marker), in registry order — the CI-visible inventory of
// what is and is not gated.
func list() {
	for _, e := range bench.Experiments {
		gates, ok := floors[e.ID]
		if !ok {
			fmt.Printf("%-12s (no floors) %s\n", e.ID, e.Title)
			continue
		}
		parts := make([]string, len(gates))
		for i, f := range gates {
			parts[i] = fmt.Sprintf("%s>=%g", f.metric, f.min)
		}
		fmt.Printf("%-12s %s\n", e.ID, strings.Join(parts, " "))
	}
}

// preflight fails when a registered *speed experiment (the perf suite)
// has no floors, or when floors name an experiment that no longer
// exists — both are silent-gap bugs in the gate itself.
func preflight() (failures []string) {
	known := map[string]bool{}
	for _, e := range bench.Experiments {
		known[e.ID] = true
		if strings.HasSuffix(e.ID, "speed") {
			if _, ok := floors[e.ID]; !ok {
				failures = append(failures, fmt.Sprintf("experiment %q has no benchcheck floors", e.ID))
			}
		}
	}
	var ids []string
	for id := range floors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !known[id] {
			failures = append(failures, fmt.Sprintf("floors registered for unknown experiment %q", id))
		}
	}
	return failures
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_<id>.json ... | benchcheck -list | benchcheck -preflight")
		os.Exit(2)
	}
	var failures []string
	switch os.Args[1] {
	case "-list", "--list":
		list()
		return
	case "-preflight", "--preflight":
		failures = preflight()
		if len(failures) == 0 {
			fmt.Println("benchcheck: every *speed experiment has floors")
		}
	default:
		for _, path := range os.Args[1:] {
			fs, err := check(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchcheck:", err)
				os.Exit(2)
			}
			failures = append(failures, fs...)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	if os.Args[1] != "-preflight" && os.Args[1] != "--preflight" {
		fmt.Println("benchcheck: all gates passed")
	}
}
