// Package deepsea is a from-scratch reproduction of "DeepSea:
// Progressive Workload-Aware Partitioning of Materialized Views in
// Scalable Data Analytics" (Du, Glavic, Tan, Miller; EDBT 2017).
//
// It bundles a simulated SQL-on-Hadoop engine (real row execution, a
// Hive/MapReduce-shaped simulated cost model) with DeepSea's online
// materialized-view manager: logical view matching, progressive
// workload-aware partitioning with overlapping fragments, a decayed
// cost-benefit model with MLE-smoothed fragment statistics, and
// value-ranked pool selection under a storage budget.
//
// Quick start:
//
//	sys := deepsea.New()
//	sys.MustCreateTable(deepsea.TableDef{
//		Name: "sales",
//		Columns: []deepsea.ColumnDef{
//			{Name: "item", Kind: deepsea.Int, Ordered: true, Lo: 0, Hi: 999},
//			{Name: "amount", Kind: deepsea.Float},
//		},
//	})
//	sys.MustInsert("sales", []any{int64(1), 9.99})
//	q := deepsea.Scan("sales").Where("item", 0, 499).
//		GroupBy("item").Agg(deepsea.Sum("amount", "total"))
//	res, err := sys.Run(q)
//
// Each Run both answers the query and lets the view manager adapt: it
// may materialize intermediate results, refine fragment boundaries, or
// evict pool entries, exactly as the paper's Algorithm 1 prescribes.
package deepsea

import (
	"context"
	"fmt"
	"strings"

	"deepsea/internal/core"
	"deepsea/internal/datastore"
	"deepsea/internal/engine"
	"deepsea/internal/faults"
	"deepsea/internal/interval"
	"deepsea/internal/maintain"
	"deepsea/internal/query"
	"deepsea/internal/relation"
)

// Kind is a column type.
type Kind int

// Column kinds.
const (
	Int Kind = iota
	Float
	String
)

// ColumnDef declares one column of a table.
type ColumnDef struct {
	Name string
	Kind Kind
	// Ordered marks an integer column usable as a partition key; Lo and
	// Hi bound its domain.
	Ordered bool
	Lo, Hi  int64
	// Width optionally overrides the modelled byte width of the column
	// (for simulating large datasets with few rows; see the examples).
	Width int64
}

// TableDef declares a base table.
type TableDef struct {
	Name    string
	Columns []ColumnDef
}

// Strategy selects the view-management behaviour.
type Strategy = core.Config

// Option configures a System.
type Option func(*core.Config)

// WithPoolLimit bounds the materialized view pool to smax bytes.
func WithPoolLimit(smax int64) Option {
	return func(c *core.Config) { c.Smax = smax }
}

// WithoutMaterialization disables view management entirely (the vanilla
// engine baseline).
func WithoutMaterialization() Option {
	return func(c *core.Config) { c.Materialize = false }
}

// WithEquiDepthPartitioning switches to non-adaptive equi-depth
// partitioning with k fragments per view.
func WithEquiDepthPartitioning(k int) Option {
	return func(c *core.Config) {
		c.Partition = core.PartitionEquiDepth
		c.EquiDepthK = k
		c.MaxFragFraction = 0
	}
}

// WithoutPartitioning stores views as single files.
func WithoutPartitioning() Option {
	return func(c *core.Config) { c.Partition = core.PartitionNone }
}

// WithHorizontalPartitioning disables overlapping fragments (splits
// rewrite their parents).
func WithHorizontalPartitioning() Option {
	return func(c *core.Config) { c.Partition = core.PartitionAdaptive }
}

// WithUnboundedFragments disables the largest-fragment bound (the
// paper's partitioning experiments run with it off), so cold regions
// stay one big fragment until queries touch them.
func WithUnboundedFragments() Option {
	return func(c *core.Config) { c.MaxFragFraction = 0 }
}

// WithNectarSelection ranks pool entries with Nectar's measure instead
// of DeepSea's decayed Φ.
func WithNectarSelection() Option {
	return func(c *core.Config) { c.Selection = core.SelectNectar }
}

// WithCostModel overrides the simulated cluster's cost constants.
func WithCostModel(cm engine.CostModel) Option {
	return func(c *core.Config) { c.CostModel = &cm }
}

// WithEstimateOnly runs the engine in estimate-only mode: no rows are
// produced, only simulated costs (the paper's simulator mode for large
// sweeps).
func WithEstimateOnly() Option {
	return func(c *core.Config) { c.ExecuteRows = false }
}

// WithParallelism sets the engine's data-path worker count (0 keeps the
// default of runtime.GOMAXPROCS, 1 forces sequential execution). Query
// results and pool contents are identical for every setting; only real
// wall-clock time changes.
func WithParallelism(n int) Option {
	return func(c *core.Config) { c.Parallelism = n }
}

// WithResultCache enables the fingerprint-keyed result cache, bounded
// to the given number of bytes. Identical repeated queries are answered
// from the cache in O(1); entries are invalidated precisely when a pool
// mutation touches a view the cached plan read. Only meaningful with
// row execution (the default mode).
func WithResultCache(bytes int64) Option {
	return func(c *core.Config) { c.CacheBytes = bytes }
}

// FaultConfig arms the deterministic fault injector for chaos and
// robustness testing. Each probability is per check at one injection
// site; a zero-valued config never injects. The same seed over the same
// workload reproduces the exact same fault schedule.
type FaultConfig struct {
	// Seed fixes the fault schedule.
	Seed int64
	// StorageRead / StorageWrite / Worker / Materialize are the
	// per-check injection probabilities in [0, 1] at each site.
	StorageRead  float64
	StorageWrite float64
	Worker       float64
	Materialize  float64
	// JournalAppend / SnapshotWrite inject at the datastore boundary
	// (no-ops without WithDatastore): failed appends surface as
	// Health.JournalAppendErrors, failed snapshots as
	// Health.JournalSnapshotErrors; neither fails the query.
	JournalAppend float64
	SnapshotWrite float64
	// PermanentFraction is the fraction of injected faults marked
	// permanent (not worth retrying); the rest are transient.
	PermanentFraction float64
}

// WithFaultInjection enables deterministic fault injection. The system
// degrades gracefully: unreadable view files are quarantined and the
// query re-answered from base tables, failed materializations never
// fail the query (the view backs off and is eventually blacklisted),
// and transient worker faults are retried up to the WithFaultRetries
// bound.
func WithFaultInjection(fc FaultConfig) Option {
	return func(c *core.Config) {
		c.Faults = &faults.Config{
			Seed:              fc.Seed,
			StorageRead:       fc.StorageRead,
			StorageWrite:      fc.StorageWrite,
			Worker:            fc.Worker,
			Materialize:       fc.Materialize,
			JournalAppend:     fc.JournalAppend,
			SnapshotWrite:     fc.SnapshotWrite,
			PermanentFraction: fc.PermanentFraction,
		}
	}
}

// WithFaultRetries bounds the transparent re-plan/re-execute attempts
// per query when injected faults abort execution (default 3).
func WithFaultRetries(n int) Option {
	return func(c *core.Config) { c.FaultRetries = n }
}

// WithCacheAdmissionLimit sets the result cache's cost-aware admission
// guard: a single result larger than frac of the cache's byte bound is
// never cached, so one giant result cannot evict the whole working set.
// 0 keeps the default (1/8); negative disables the guard; values above
// 1 clamp to 1. Rejections are counted in Health.CacheAdmissionRejects.
func WithCacheAdmissionLimit(frac float64) Option {
	return func(c *core.Config) { c.CacheMaxEntryFraction = frac }
}

// Datastore is the persistence boundary a System journals through. Use
// OpenJournal for the file-backed implementation or implement the
// interface for custom backends; datastore.Null (and a nil store) keep
// the historical in-memory-only behaviour.
type Datastore = datastore.Store

// OpenJournal opens (or creates) the file-backed datastore rooted at
// dir: a write-ahead journal of pool, statistics and file mutations
// plus periodic snapshots. Pass the result to WithDatastore; the caller
// owns it and should Close it after the System is drained. A journal
// left behind by a previous process — even one that was killed
// mid-write — is recovered on the next New that mounts it.
func OpenJournal(dir string) (Datastore, error) {
	return datastore.Open(dir)
}

// WithDatastore mounts a persistence store: every pool, statistics and
// materialized-file mutation is journaled through it, and New first
// replays the store's snapshot and journal tail so a restarted process
// resumes with pool contents and hit statistics intact. Health reports
// the recovery outcome and the journal's running counters.
func WithDatastore(ds Datastore) Option {
	return func(c *core.Config) { c.Datastore = ds }
}

// WithBackgroundMaintenance moves all pool maintenance — view and
// fragment materialization, splits, merges, sweeps — off the query
// path onto a bounded worker pool. Queries enqueue prioritized
// candidates and return after execution alone; workers drain the queue
// in Φ order, re-validating each task against the live pool so stale
// work no-ops. workers is the drain concurrency (0 keeps the default
// inline mode); queue bounds the pending-task heap (0 means the
// default of 1024). When the queue is full new candidates are dropped
// — maintenance is advisory, so a dropped task only delays
// materialization until a later query re-proposes it.
func WithBackgroundMaintenance(workers, queue int) Option {
	return func(c *core.Config) {
		c.MaintWorkers = workers
		c.MaintQueue = queue
	}
}

// WithConfig replaces the whole configuration (advanced use).
func WithConfig(cfg Strategy) Option {
	return func(c *core.Config) { *c = cfg }
}

// WithRematOnAppend disables incremental view refresh on Append: every
// dependent view is dropped and re-earned by future queries
// (invalidate-and-recompute). Baseline arm of the ingestspeed
// experiment.
func WithRematOnAppend() Option {
	return func(c *core.Config) { c.RematOnAppend = true }
}

// System is a DeepSea instance: a simulated analytics engine plus the
// adaptive materialized-view pool.
type System struct {
	ds      *core.DeepSea
	schemas map[string]relation.Schema
}

// New creates a System. Without options it runs full DeepSea with an
// unlimited pool.
func New(opts ...Option) *System {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &System{
		ds:      core.New(cfg),
		schemas: make(map[string]relation.Schema),
	}
}

// CreateTable registers an empty base table.
func (s *System) CreateTable(def TableDef) error {
	if def.Name == "" {
		return fmt.Errorf("deepsea: table needs a name")
	}
	if _, ok := s.schemas[def.Name]; ok {
		return fmt.Errorf("deepsea: table %q already exists", def.Name)
	}
	schema := relation.Schema{Name: def.Name}
	for _, c := range def.Columns {
		col := relation.Column{
			Name:    c.Name,
			Ordered: c.Ordered,
			Lo:      c.Lo,
			Hi:      c.Hi,
			Width:   c.Width,
		}
		switch c.Kind {
		case Int:
			col.Type = relation.Int
		case Float:
			col.Type = relation.Float
		case String:
			col.Type = relation.String
		default:
			return fmt.Errorf("deepsea: column %q has unknown kind %d", c.Name, c.Kind)
		}
		if col.Ordered && col.Type != relation.Int {
			return fmt.Errorf("deepsea: ordered column %q must be Int", c.Name)
		}
		schema.Cols = append(schema.Cols, col)
	}
	s.schemas[def.Name] = schema
	s.ds.AddBaseTable(relation.NewTable(schema))
	return nil
}

// MustCreateTable is CreateTable that panics on error.
func (s *System) MustCreateTable(def TableDef) {
	if err := s.CreateTable(def); err != nil {
		panic(err)
	}
}

// Insert appends one row; values must match the table's columns in
// order (int64, float64 or string per column kind).
func (s *System) Insert(table string, values []any) error {
	schema, ok := s.schemas[table]
	if !ok {
		return fmt.Errorf("deepsea: unknown table %q", table)
	}
	if len(values) != len(schema.Cols) {
		return fmt.Errorf("deepsea: table %q wants %d values, got %d",
			table, len(schema.Cols), len(values))
	}
	row, err := convertRow(schema, values)
	if err != nil {
		return err
	}
	s.ds.Eng.BaseTable(table).Append(row)
	return nil
}

// convertRow converts one []any value tuple to a relation.Row per the
// schema's column kinds.
func convertRow(schema relation.Schema, values []any) (relation.Row, error) {
	if len(values) != len(schema.Cols) {
		return nil, fmt.Errorf("deepsea: table %q wants %d values, got %d",
			schema.Name, len(schema.Cols), len(values))
	}
	row := make(relation.Row, len(values))
	for i, v := range values {
		col := schema.Cols[i]
		switch col.Type {
		case relation.Int:
			x, ok := v.(int64)
			if !ok {
				if xi, oki := v.(int); oki {
					x, ok = int64(xi), true
				}
			}
			if !ok {
				return nil, fmt.Errorf("deepsea: column %q wants int64, got %T", col.Name, v)
			}
			row[i] = relation.IntVal(x)
		case relation.Float:
			x, ok := v.(float64)
			if !ok {
				// JSON decoding normalizes integral numbers to int64; an
				// integral value in a float column is still a float.
				if xi, oki := v.(int64); oki {
					x, ok = float64(xi), true
				}
			}
			if !ok {
				return nil, fmt.Errorf("deepsea: column %q wants float64, got %T", col.Name, v)
			}
			row[i] = relation.FloatVal(x)
		default:
			x, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("deepsea: column %q wants string, got %T", col.Name, v)
			}
			row[i] = relation.StringVal(x)
		}
	}
	return row, nil
}

// AppendReport summarises one Append call: the table's new row count,
// the dependent views marked stale, and what the synchronous refresh
// did (see core.AppendReport).
type AppendReport = core.AppendReport

// IngestStats is the ingest surface of Health (see core.IngestStats).
type IngestStats = core.IngestStats

// RecoveredIngest reports what ApplyRecoveredAppends replayed and
// reconciled (see core.RecoveredIngest).
type RecoveredIngest = core.RecoveredIngest

// Append journals a batch of new rows for a base table, marks dependent
// materialized views stale, and brings them fresh again by incremental
// delta propagation (inline, or via the background maintenance pool's
// refresh band when one is configured). Unlike Insert — a load-time
// primitive that bypasses the view manager — Append is the online
// ingest path: safe under concurrent queries, durable when a datastore
// is attached, and never serves a query stale view content.
func (s *System) Append(table string, rows [][]any) (AppendReport, error) {
	schema, ok := s.schemas[table]
	if !ok {
		return AppendReport{}, fmt.Errorf("deepsea: unknown table %q", table)
	}
	converted := make([]relation.Row, len(rows))
	for i, values := range rows {
		row, err := convertRow(schema, values)
		if err != nil {
			return AppendReport{}, err
		}
		converted[i] = row
	}
	return s.ds.Append(table, converted)
}

// AppendRows is Append for callers that already hold relation.Rows
// (serving tier, benchmarks).
func (s *System) AppendRows(table string, rows []relation.Row) (AppendReport, error) {
	return s.ds.Append(table, rows)
}

// ValidateRows type-checks an append batch against the table's schema
// without applying it, so a serving tier can reject one caller's bad
// batch with a 400 before it joins a coalesced group commit (where the
// whole batch would share the failure).
func (s *System) ValidateRows(table string, rows [][]any) error {
	schema, ok := s.schemas[table]
	if !ok {
		return fmt.Errorf("deepsea: unknown table %q", table)
	}
	for _, values := range rows {
		if _, err := convertRow(schema, values); err != nil {
			return err
		}
	}
	return nil
}

// RoutingKeyIndex returns the column index of the table's shard-routing
// key — its ordered item_sk column — or -1 when the table has none
// (dimension tables are fully replicated, so any shard may append to
// them).
func (s *System) RoutingKeyIndex(table string) int {
	schema, ok := s.schemas[table]
	if !ok {
		return -1
	}
	for i, c := range schema.Cols {
		if c.Ordered && c.Type == relation.Int && strings.HasSuffix(c.Name, "item_sk") {
			return i
		}
	}
	return -1
}

// IngestStats returns the ingest counters.
func (s *System) IngestStats() IngestStats { return s.ds.IngestStats() }

// ApplyRecoveredAppends replays base-table appends recovered from the
// datastore onto the re-created base catalog and reconciles the view
// pool against the result. Call after CreateTable/Insert re-load the
// original tables and before serving traffic.
func (s *System) ApplyRecoveredAppends() (RecoveredIngest, error) {
	return s.ds.ApplyRecoveredAppends()
}

// MustInsert is Insert that panics on error.
func (s *System) MustInsert(table string, values []any) {
	if err := s.Insert(table, values); err != nil {
		panic(err)
	}
}

// Run processes a query through Algorithm 1 and returns the report,
// which includes the result rows, the simulated cost, and what the view
// manager did (rewrites, materializations, evictions).
func (s *System) Run(q *Query) (Report, error) {
	return s.RunContext(context.Background(), q)
}

// RunContext is Run with cancellation: when ctx is cancelled or its
// deadline passes, in-flight execution stops promptly, every lock and
// pin is released, and the error is ctx.Err(). The system stays fully
// usable afterwards.
func (s *System) RunContext(ctx context.Context, q *Query) (Report, error) {
	plan, err := q.build(s)
	if err != nil {
		return Report{}, err
	}
	rep, err := s.ds.ProcessQueryContext(ctx, plan)
	if err != nil {
		return Report{}, err
	}
	return Report{QueryReport: rep}, nil
}

// BatchItem is one query of a RunBatch call with its own context (nil
// means context.Background()): items planned together keep independent
// deadlines and cancellation.
type BatchItem struct {
	Ctx   context.Context
	Query *Query
}

// RunBatch processes the items as one planning batch: all of them run
// Algorithm 1's planning steps back-to-back under a single acquisition
// of the planning lock, then execute and maintain concurrently exactly
// as independent RunContext calls would. Results are byte-identical to
// running the items separately, in any order; what batching changes is
// only lock traffic — a burst of queries pays one planning-lock
// acquisition instead of one each (see PlanAcquisitions). The returned
// slices are index-aligned with items.
func (s *System) RunBatch(items []BatchItem) ([]Report, []error) {
	reports := make([]Report, len(items))
	errs := make([]error, len(items))
	coreItems := make([]core.BatchItem, 0, len(items))
	idx := make([]int, 0, len(items))
	for i, it := range items {
		if it.Query == nil {
			errs[i] = fmt.Errorf("deepsea: batch item %d has no query", i)
			continue
		}
		plan, err := it.Query.build(s)
		if err != nil {
			errs[i] = err
			continue
		}
		coreItems = append(coreItems, core.BatchItem{Ctx: it.Ctx, Query: plan})
		idx = append(idx, i)
	}
	coreReps, coreErrs := s.ds.ProcessBatchContext(coreItems)
	for j, i := range idx {
		reports[i] = Report{QueryReport: coreReps[j]}
		errs[i] = coreErrs[j]
	}
	return reports, errs
}

// TemplateKey returns the query's plan-template fingerprint: queries
// that differ only in their range-predicate bounds share a key. Serving
// layers group concurrent requests by this key to batch their planning
// (RunBatch); it is not the result-cache key, which distinguishes exact
// bounds.
func (s *System) TemplateKey(q *Query) (string, error) {
	plan, err := q.build(s)
	if err != nil {
		return "", err
	}
	return query.TemplateFingerprint(plan), nil
}

// MaintStats is the background maintenance pool's counter snapshot;
// see maintain.Stats for field documentation.
type MaintStats = maintain.Stats

// Health is a consistent operational snapshot of the system — pool
// occupancy versus the budget, quarantined files, views under
// materialization backoff or blacklisted, result-cache counters, and
// in-flight queries. See core.Health for field documentation.
type Health = core.Health

// Health returns the operational snapshot. Safe to call concurrently
// with query processing; it takes no manager lock.
func (s *System) Health() Health { return s.ds.Health() }

// PlanAcquisitions returns the cumulative planning-lock acquisition
// count. Under template-batched serving it grows slower than the query
// count — the plan-amortization ratio.
func (s *System) PlanAcquisitions() uint64 { return s.ds.PlanAcquisitions() }

// Snapshot persists a consistent checkpoint of the whole system state
// (pool manifest, materialized files, statistics, cache generations)
// to the mounted datastore and truncates the journal behind it. It
// briefly quiesces planning, so call it between queries or on a timer,
// not per query. A no-op without WithDatastore. Recovery after a crash
// replays the latest snapshot plus the journal tail written since.
func (s *System) Snapshot() error { return s.ds.Snapshot() }

// Recovery reports what New's recovery pass did: whether a snapshot
// was loaded, how many journal records were replayed or skipped, and
// the fatal error (if any) that forced a cold start.
func (s *System) Recovery() core.RecoveryInfo { return s.ds.Recovery() }

// DrainMaintenance blocks until the background maintenance queue is
// empty and all in-flight tasks have committed, or ctx is done. A
// no-op (nil) without WithBackgroundMaintenance. Call it before
// comparing pool contents against an inline run, or before Snapshot
// when the checkpoint should include all enqueued work.
func (s *System) DrainMaintenance(ctx context.Context) error {
	return s.ds.DrainMaintenance(ctx)
}

// CloseMaintenance drains the queue and stops the background workers.
// Idempotent; a no-op without WithBackgroundMaintenance. After Close,
// queries still run but new maintenance candidates are dropped.
func (s *System) CloseMaintenance() { s.ds.CloseMaintenance() }

// MaintStats returns the background maintenance counters (all zero in
// inline mode); see Health for the serving-oriented view.
func (s *System) MaintStats() MaintStats { return s.ds.MaintStats() }

// Now returns the simulated clock in seconds.
func (s *System) Now() float64 { return s.ds.Now() }

// OwnedRange describes the partition-key range a sharded instance
// owns; see System.SetOwnedRange.
type OwnedRange = core.OwnedRange

// SetOwnedRange declares this System one shard of a scatter-gather
// cluster, owning the contiguous partition-key range [lo, hi] as of the
// given handoff epoch. Standalone systems never call this. The range is
// advisory to the engine (the shard still holds the full base tables —
// ownership controls which rows a coordinator routes here, and the view
// pool specializes to the ranges actually queried); the serving layer
// enforces it by rejecting out-of-range or stale-epoch requests.
func (s *System) SetOwnedRange(lo, hi int64, epoch uint64) {
	s.ds.SetOwnedRange(lo, hi, epoch)
}

// OwnedRange returns the declared shard range; ok is false for a
// standalone System.
func (s *System) OwnedRange() (r OwnedRange, ok bool) { return s.ds.OwnedRange() }

// PoolBytes returns the current materialized-pool size in bytes.
func (s *System) PoolBytes() int64 { return s.ds.Pool.TotalSize() }

// PoolContents describes the pool for inspection: one line per stored
// view or fragment.
func (s *System) PoolContents() []string {
	var out []string
	for _, pv := range s.ds.Pool.Views() {
		if pv.Path != "" {
			out = append(out, fmt.Sprintf("view %s (%d bytes)", pv.Path, pv.Size))
		}
		for attr, part := range pv.Parts {
			for _, f := range part.Fragments() {
				out = append(out, fmt.Sprintf("fragment %s on %s %s (%d bytes)",
					f.Path, attr, f.Iv, f.Size))
			}
		}
	}
	return out
}

// Report is the outcome of one query.
type Report struct {
	core.QueryReport
}

// Rows returns the result as [][]any (nil in estimate-only mode).
func (r Report) Rows() [][]any {
	if r.Result == nil {
		return nil
	}
	out := make([][]any, 0, len(r.Result.Rows))
	for _, row := range r.Result.Rows {
		vals := make([]any, len(row))
		for i, v := range row {
			switch r.Result.Schema.Cols[i].Type {
			case relation.Int:
				vals[i] = v.I
			case relation.Float:
				vals[i] = v.F
			default:
				vals[i] = v.S
			}
		}
		out = append(out, vals)
	}
	return out
}

// Columns returns the result column names.
func (r Report) Columns() []string {
	if r.Result == nil {
		return nil
	}
	out := make([]string, len(r.Result.Schema.Cols))
	for i, c := range r.Result.Schema.Cols {
		out[i] = c.Name
	}
	return out
}

// SimulatedSeconds returns the simulated elapsed time charged to the
// query (execution plus any materialization work).
func (r Report) SimulatedSeconds() float64 { return r.TotalSeconds }

// internal plan building -----------------------------------------------

// Query is a fluent relational query builder over base tables.
type Query struct {
	build func(*System) (query.Node, error)
}

// Scan starts a query from a base table.
func Scan(table string) *Query {
	return &Query{build: func(s *System) (query.Node, error) {
		schema, ok := s.schemas[table]
		if !ok {
			return nil, fmt.Errorf("deepsea: unknown table %q", table)
		}
		return query.NewScan(table, schema), nil
	}}
}

// Join equi-joins q with other on leftCol = rightCol.
func (q *Query) Join(other *Query, leftCol, rightCol string) *Query {
	return &Query{build: func(s *System) (query.Node, error) {
		l, err := q.build(s)
		if err != nil {
			return nil, err
		}
		r, err := other.build(s)
		if err != nil {
			return nil, err
		}
		return &query.Join{Left: l, Right: r, LCol: leftCol, RCol: rightCol}, nil
	}}
}

// Select keeps only the named columns (map-side projection).
func (q *Query) Select(cols ...string) *Query {
	return &Query{build: func(s *System) (query.Node, error) {
		c, err := q.build(s)
		if err != nil {
			return nil, err
		}
		return &query.Project{Child: c, Cols: cols}, nil
	}}
}

// Where restricts an ordered integer column to [lo, hi]. DeepSea uses
// these range selections to derive partition boundaries.
func (q *Query) Where(col string, lo, hi int64) *Query {
	return &Query{build: func(s *System) (query.Node, error) {
		c, err := q.build(s)
		if err != nil {
			return nil, err
		}
		if lo > hi {
			return nil, fmt.Errorf("deepsea: empty range [%d,%d] on %s", lo, hi, col)
		}
		return &query.Select{Child: c,
			Ranges: []query.RangePred{{Col: col, Iv: interval.New(lo, hi)}}}, nil
	}}
}

// WhereEq adds an equality predicate on a string column.
func (q *Query) WhereEq(col, value string) *Query {
	return &Query{build: func(s *System) (query.Node, error) {
		c, err := q.build(s)
		if err != nil {
			return nil, err
		}
		return &query.Select{Child: c, Residuals: []query.CmpPred{{
			Col: col, Op: query.Eq,
			Val: relation.StringVal(value), Typ: relation.String,
		}}}, nil
	}}
}

// AggSpec names one aggregate output.
type AggSpec struct{ spec query.AggSpec }

// Count counts rows per group, emitted as the named column.
func Count(as string) AggSpec {
	return AggSpec{spec: query.AggSpec{Func: query.Count, As: as}}
}

// Sum sums col per group.
func Sum(col, as string) AggSpec {
	return AggSpec{spec: query.AggSpec{Func: query.Sum, Col: col, As: as}}
}

// Avg averages col per group.
func Avg(col, as string) AggSpec {
	return AggSpec{spec: query.AggSpec{Func: query.Avg, Col: col, As: as}}
}

// Min takes the per-group minimum of col.
func Min(col, as string) AggSpec {
	return AggSpec{spec: query.AggSpec{Func: query.Min, Col: col, As: as}}
}

// Max takes the per-group maximum of col.
func Max(col, as string) AggSpec {
	return AggSpec{spec: query.AggSpec{Func: query.Max, Col: col, As: as}}
}

// Partial switches the query's top-level aggregation to partial mode:
// instead of final values it emits mergeable per-group states — counts,
// exact lossless sum encodings (see engine.MergePartialSums), and typed
// min/max — under "#"-suffixed column names. A scatter-gather
// coordinator runs the same query in partial mode on every shard and
// merges the states; because the sums are exact, the merged result is
// byte-identical for any partition of the rows across shards. Partial
// plans carry a distinct fingerprint and template key, so caches never
// conflate them with their full-mode twins. Calling Partial on a query
// whose top operator is not an aggregation is an error at Run time.
func (q *Query) Partial() *Query {
	return &Query{build: func(s *System) (query.Node, error) {
		n, err := q.build(s)
		if err != nil {
			return nil, err
		}
		agg, ok := n.(*query.Aggregate)
		if !ok {
			return nil, fmt.Errorf("deepsea: Partial() needs a top-level aggregation, got %T", n)
		}
		cp := *agg
		cp.Partial = true
		return &cp, nil
	}}
}

// Grouped is the intermediate state of GroupBy awaiting Agg.
type Grouped struct {
	q    *Query
	cols []string
}

// GroupBy starts an aggregation.
func (q *Query) GroupBy(cols ...string) *Grouped { return &Grouped{q: q, cols: cols} }

// Agg finishes the aggregation with the given aggregate outputs.
func (g *Grouped) Agg(aggs ...AggSpec) *Query {
	return &Query{build: func(s *System) (query.Node, error) {
		c, err := g.q.build(s)
		if err != nil {
			return nil, err
		}
		specs := make([]query.AggSpec, len(aggs))
		for i, a := range aggs {
			specs[i] = a.spec
		}
		return &query.Aggregate{Child: c, GroupBy: g.cols, Aggs: specs}, nil
	}}
}
